"""The tree-separation lemmas of section 2 (Lemma 1 and Lemma 2).

Both lemmas take a binary tree ``T`` (or a *piece* of a larger tree,
restricted to a node universe), two designated nodes ``r1, r2`` (possibly
equal), and a target ``delta``, and split ``T`` into two forests by removing
a few edges, such that:

* the removed ("cut") edges run between two small node sets ``S1`` and
  ``S2`` that will be *laid out now* by the embedding algorithm;
* side 2 has roughly ``delta`` nodes — within ``floor((delta+1)/3)`` for
  Lemma 1 (one application of the heavy-subtree walk ``find1``) and within
  ``floor((delta+4)/9)`` for Lemma 2 (a correcting second application);
* the designated nodes land in ``S1 | S2``;
* each ``S_i`` is *collinear* in its side: every leftover component hangs
  off at most two ``S_i`` nodes, so the components remain "intervals" with
  at most two designated nodes each.

The published abstract spells out ``find1``/``find2`` and the case split of
Lemma 2's proof but elides some sub-cases; the reconstruction here follows
the proof text and is property-tested against the stated postconditions
(see ``tests/test_separators.py``).
"""

from __future__ import annotations

from collections.abc import Collection, Iterable
from dataclasses import dataclass

from ..trees.binary_tree import BinaryTree

__all__ = ["Separation", "lemma1_split", "lemma2_split", "lemma1_bound", "lemma2_bound"]


def lemma1_bound(delta: int) -> int:
    """Lemma 1's size tolerance: ``floor((delta + 1) / 3)``."""
    return (delta + 1) // 3


def lemma2_bound(delta: int) -> int:
    """Lemma 2's size tolerance: ``floor((delta + 4) / 9)``."""
    return (delta + 4) // 9


@dataclass(frozen=True)
class Separation:
    """Result of splitting a tree piece into two forests.

    ``cut_edges`` are ``(a, b)`` pairs with ``a`` on side 1 and ``b`` on
    side 2; every endpoint belongs to the matching ``s`` set.  ``side2`` is
    the side whose size approximates the requested ``delta``.

    ``n_promotions`` counts collinearity repairs (see
    :func:`_repair_collinearity`): extra nodes promoted into an ``S`` set
    beyond the construction's nominal 4.  It is 0 in the overwhelming
    majority of splits; the embedding's slot accounting absorbs the rest.
    """

    side1: frozenset[int]
    side2: frozenset[int]
    s1: frozenset[int]
    s2: frozenset[int]
    cut_edges: tuple[tuple[int, int], ...]
    n_promotions: int = 0

    def swapped(self) -> Separation:
        """Interchange the roles of the two sides (used by Lemma 2)."""
        return Separation(
            side1=self.side2,
            side2=self.side1,
            s1=self.s2,
            s2=self.s1,
            cut_edges=tuple((b, a) for a, b in self.cut_edges),
            n_promotions=self.n_promotions,
        )

    @property
    def n2(self) -> int:
        """Size of side 2 (the ~delta side)."""
        return len(self.side2)


class _Piece:
    """A piece of a tree rooted at a chosen node, restricted to a universe.

    Precomputes parents, children and subtree sizes within the universe;
    all separator logic runs on these.
    """

    __slots__ = ("tree", "root", "parent", "children", "size", "order", "depth")

    def __init__(self, tree: BinaryTree, universe: Collection[int], root: int):
        self.tree = tree
        self.root = root
        uni = universe if isinstance(universe, (set, frozenset)) else set(universe)
        if root not in uni:
            raise ValueError(f"root {root} not in the piece universe")
        parent: dict[int, int | None] = {root: None}
        children: dict[int, list[int]] = {}
        order: list[int] = []
        depth: dict[int, int] = {root: 0}
        stack = [root]
        while stack:
            v = stack.pop()
            order.append(v)
            kids = [u for u in tree.neighbors(v) if u in uni and u != parent[v]]
            children[v] = kids
            for u in kids:
                parent[u] = v
                depth[u] = depth[v] + 1
                stack.append(u)
        if len(order) != len(uni):
            raise ValueError("piece universe is not connected")
        self.parent = parent
        self.children = children
        self.order = order
        self.depth = depth
        size = {v: 1 for v in order}
        for v in reversed(order):
            p = parent[v]
            if p is not None:
                size[p] += size[v]
        self.size = size

    @property
    def n(self) -> int:
        return len(self.order)

    def subtree_nodes(self, u: int) -> set[int]:
        """All nodes of the subtree rooted at ``u`` within the piece."""
        out = set()
        stack = [u]
        while stack:
            v = stack.pop()
            out.add(v)
            stack.extend(self.children[v])
        return out

    def path_from_root(self, v: int) -> list[int]:
        """Root-to-``v`` path."""
        path = []
        cur: int | None = v
        while cur is not None:
            path.append(cur)
            cur = self.parent[cur]
        return path[::-1]

    def lca(self, u: int, v: int) -> int:
        """Lowest common ancestor within the piece."""
        while self.depth[u] > self.depth[v]:
            u = self.parent[u]  # type: ignore[assignment]
        while self.depth[v] > self.depth[u]:
            v = self.parent[v]  # type: ignore[assignment]
        while u != v:
            u = self.parent[u]  # type: ignore[assignment]
            v = self.parent[v]  # type: ignore[assignment]
        return u

    def find1(self, start: int, delta: int) -> int:
        """The paper's ``find1``: descend into the largest subtree until the
        subtree holds at most ``4*delta/3`` nodes.

        Requires ``3*size(start) > 4*delta`` and at most two children at
        every visited node (guaranteed for pieces rooted at boundary nodes),
        which yields ``|size(result) - delta| <= floor((delta+1)/3)``.
        """
        u = start
        if 3 * self.size[u] <= 4 * delta:
            raise ValueError("find1 precondition violated: piece too small")
        while 3 * self.size[u] > 4 * delta:
            kids = self.children[u]
            if not kids:
                raise RuntimeError("find1 ran out of children; piece is inconsistent")
            u = max(kids, key=lambda c: self.size[c])
        return u


def _as_universe(tree: BinaryTree, universe: Iterable[int] | None) -> frozenset[int]:
    if universe is None:
        return frozenset(tree.nodes())
    return frozenset(universe)


def lemma1_split(
    tree: BinaryTree,
    r1: int,
    r2: int,
    delta: int,
    universe: Iterable[int] | None = None,
) -> Separation:
    """Lemma 1: split off a side of ``delta +- floor((delta+1)/3)`` nodes.

    ``|S1| <= 4``, ``|S2| <= 2``, exactly one cut edge.  Requires
    ``3*n > 4*delta``, ``delta >= 1``, and ``r1`` of degree at most 2 inside
    the piece (always true when ``r1`` is a boundary/designated node).
    """
    uni = _as_universe(tree, universe)
    n = len(uni)
    if delta < 1:
        raise ValueError(f"delta must be >= 1, got {delta}")
    if 3 * n <= 4 * delta:
        raise ValueError(f"lemma 1 needs 3n > 4*delta; n={n}, delta={delta}")
    if r2 not in uni or r1 not in uni:
        raise ValueError("designated nodes must lie in the piece")
    piece = _Piece(tree, uni, r1)
    if len(piece.children[r1]) > 2:
        raise ValueError(f"designated root {r1} has degree > 2 inside the piece")
    u = piece.find1(r1, delta)
    z = piece.parent[u]
    assert z is not None  # find1 descends at least one step since 3n > 4*delta
    side2 = piece.subtree_nodes(u)
    side1 = uni - side2
    if r2 in side2:
        s1 = frozenset({r1, z})
        s2 = frozenset({u, r2})
    else:
        y = piece.lca(u, r2)
        s1 = frozenset({r1, r2, z, y})
        s2 = frozenset({u})
    return Separation(
        side1=frozenset(side1),
        side2=frozenset(side2),
        s1=s1,
        s2=s2,
        cut_edges=((z, u),),
    )


def lemma2_split(
    tree: BinaryTree,
    r1: int,
    r2: int,
    delta: int,
    universe: Iterable[int] | None = None,
) -> Separation:
    """Lemma 2: split off a side of ``delta +- floor((delta+4)/9)`` nodes.

    ``|S1|, |S2| <= 4``; at most three cut edges; otherwise the same
    contract as :func:`lemma1_split`.  Requires ``1 <= delta <= n - 1``.
    """
    uni = _as_universe(tree, universe)
    n = len(uni)
    if not 1 <= delta <= n - 1:
        raise ValueError(f"lemma 2 needs 1 <= delta <= n-1; n={n}, delta={delta}")
    if r2 not in uni or r1 not in uni:
        raise ValueError("designated nodes must lie in the piece")
    if 3 * n <= 4 * delta:
        # Solve the complementary problem (paper: "interchange the roles"):
        # delta* = n - delta <= n/4 < 3n/4, and the bound only tightens.
        sep = _lemma2_main(tree, uni, r1, r2, n - delta).swapped()
    else:
        sep = _lemma2_main(tree, uni, r1, r2, delta)
    return _repair_collinearity(tree, sep)


def _repair_collinearity(tree: BinaryTree, sep: Separation) -> Separation:
    """Restore collinearity by promoting component medians into the S sets.

    The extended abstract's Lemma 2 proof elides the sub-case bookkeeping
    that keeps every leftover component attached to at most two S nodes; in
    our reconstruction a component can occasionally touch three of the four
    S nodes of its side.  The repair: promote the tree-median of three
    attachment points into S.  The median lies on all three pairwise paths,
    so the component splits into pieces each attached to at most one old S
    node plus (at most once, it being a tree) the median — i.e. at most two
    edges.  Each promotion grows S by one and strictly shrinks the violating
    region, so the loop terminates after a handful of steps; ``n_promotions``
    records how many were needed (0 almost always; see the separator stats
    bench).
    """
    from ..trees.forest import components_after_removal

    s1, s2 = set(sep.s1), set(sep.s2)
    promotions = 0
    for side, s in ((sep.side1, s1), (sep.side2, s2)):
        while True:
            bad = None
            for comp in components_after_removal(tree, s & side, within=side):
                if comp.n_attachment_edges > 2:
                    bad = comp
                    break
            if bad is None:
                break
            inside = [a for a, _ in bad.attachments[:3]]
            s.add(_component_median(tree, bad.nodes, *inside))
            promotions += 1
    if promotions == 0:
        return sep
    return Separation(
        side1=sep.side1,
        side2=sep.side2,
        s1=frozenset(s1),
        s2=frozenset(s2),
        cut_edges=sep.cut_edges,
        n_promotions=promotions,
    )


def _component_median(tree: BinaryTree, nodes: frozenset[int], a: int, b: int, c: int) -> int:
    """The unique node on all three pairwise tree paths among ``a, b, c``.

    All three live in the connected ``nodes``; so does the median.
    """
    piece = _Piece(tree, nodes, a)
    # median = the deeper of lca(a,b)-style meet points; with root a the
    # median of (a, b, c) is the deepest common ancestor of b and c on the
    # paths from a, i.e. the point where the root paths to b and c diverge.
    m1 = piece.lca(b, c)
    m2 = piece.lca(a, b)
    m3 = piece.lca(a, c)
    # For a tree, two of the three pairwise LCAs coincide and the third
    # (the deepest) is the median.
    candidates = [m1, m2, m3]
    return max(candidates, key=lambda v: piece.depth[v])


def _lemma2_main(
    tree: BinaryTree,
    uni: frozenset[int],
    r1: int,
    r2: int,
    delta: int,
) -> Separation:
    """Lemma 2 core, assuming ``3n > 4*delta`` and ``delta >= 1``."""
    piece = _Piece(tree, uni, r1)
    if len(piece.children[r1]) > 2:
        raise ValueError(f"designated root {r1} has degree > 2 inside the piece")

    # --- procedure find2: walk from r1 towards r2 while the subtree is big.
    path = piece.path_from_root(r2)  # r1 ... r2
    v = r1
    i = 0
    while 3 * piece.size[v] > 4 * delta and v != r2:
        i += 1
        v = path[i]

    if v == r2 and 3 * piece.size[v] > 4 * delta:
        return _case_both_above(piece, uni, r1, r2, delta)
    if piece.size[v] < delta:
        return _case_small_subtree(piece, uni, r1, r2, v, delta)
    return _case_medium_subtree(tree, piece, uni, r1, r2, v, delta)


def _case_both_above(
    piece: _Piece, uni: frozenset[int], r1: int, r2: int, delta: int
) -> Separation:
    """find2 reached r2 with ``size(r2)`` still large: carve below r2.

    Both designated nodes end up on side 1; ``find1`` is applied (at most)
    twice starting from ``r2``, the second time to correct the first cut's
    size error in whichever direction it went.
    """
    tree = piece.tree
    u1 = piece.find1(r2, delta)
    z1 = piece.parent[u1]
    assert z1 is not None
    P = piece.subtree_nodes(u1)
    e = len(P) - delta
    if e == 0:
        return Separation(
            side1=frozenset(uni - P),
            side2=frozenset(P),
            s1=frozenset({r1, r2, z1}),
            s2=frozenset({u1}),
            cut_edges=((z1, u1),),
        )
    if e > 0:
        # Overshoot: return a sub-piece of size ~e from P back to side 1.
        sub = _Piece(tree, P, u1)
        u2 = sub.find1(u1, e)
        z2 = sub.parent[u2]
        assert z2 is not None
        Q = sub.subtree_nodes(u2)
        return Separation(
            side1=frozenset((uni - P) | Q),
            side2=frozenset(P - Q),
            s1=frozenset({r1, r2, z1, u2}),
            s2=frozenset({u1, z2}),
            cut_edges=((z1, u1), (u2, z2)),
        )
    # Undershoot: carve an extra piece of size ~(-e) from T(r2) - P.
    rest = piece.subtree_nodes(r2) - P
    sub = _Piece(tree, rest, r2)
    u2 = sub.find1(r2, -e)
    z2 = sub.parent[u2]
    assert z2 is not None
    Q = sub.subtree_nodes(u2)
    return Separation(
        side1=frozenset(uni - P - Q),
        side2=frozenset(P | Q),
        s1=frozenset({r1, r2, z1, z2}),
        s2=frozenset({u1, u2}),
        cut_edges=((z1, u1), (z2, u2)),
    )


def _case_small_subtree(
    piece: _Piece, uni: frozenset[int], r1: int, r2: int, v: int, delta: int
) -> Separation:
    """find2 stopped at ``v`` on the r1->r2 path with ``size(v) < delta``.

    ``T(v)`` (which contains r2) moves to side 2 wholesale; the deficit
    ``delta - size(v)`` is made up by carving from ``T(x) - T(v)`` where
    ``x = parent(v)``, correcting once for the 1/9 bound.
    """
    tree = piece.tree
    x = piece.parent[v]
    assert x is not None  # the walk moved at least once because size(r1)=n
    Tv = piece.subtree_nodes(v)
    extra = delta - len(Tv)
    assert extra >= 1
    rest = piece.subtree_nodes(x) - Tv
    sub = _Piece(tree, rest, x)
    w1 = sub.find1(x, extra)
    zw1 = sub.parent[w1]
    assert zw1 is not None
    P1 = sub.subtree_nodes(w1)
    e = len(P1) - extra
    if e == 0:
        return Separation(
            side1=frozenset(uni - Tv - P1),
            side2=frozenset(Tv | P1),
            s1=frozenset({r1, x, zw1}),
            s2=frozenset({v, r2, w1}),
            cut_edges=((x, v), (zw1, w1)),
        )
    if e > 0:
        sub2 = _Piece(tree, P1, w1)
        w2 = sub2.find1(w1, e)
        zw2 = sub2.parent[w2]
        assert zw2 is not None
        Q = sub2.subtree_nodes(w2)
        return Separation(
            side1=frozenset((uni - Tv - P1) | Q),
            side2=frozenset(Tv | (P1 - Q)),
            s1=frozenset({r1, x, zw1, w2}),
            s2=frozenset({v, r2, w1, zw2}),
            cut_edges=((x, v), (zw1, w1), (w2, zw2)),
        )
    rest2 = rest - P1
    sub2 = _Piece(tree, rest2, x)
    w2 = sub2.find1(x, -e)
    zw2 = sub2.parent[w2]
    assert zw2 is not None
    Q = sub2.subtree_nodes(w2)
    return Separation(
        side1=frozenset(uni - Tv - P1 - Q),
        side2=frozenset(Tv | P1 | Q),
        s1=frozenset({r1, x, zw1, zw2}),
        s2=frozenset({v, r2, w1, w2}),
        cut_edges=((x, v), (zw1, w1), (zw2, w2)),
    )


def _case_medium_subtree(
    tree: BinaryTree,
    piece: _Piece,
    uni: frozenset[int],
    r1: int,
    r2: int,
    v: int,
    delta: int,
) -> Separation:
    """find2 stopped at ``v`` with ``delta <= size(v) <= 4*delta/3``.

    ``T(v)`` is close to the target from above: Lemma 1 inside ``T(v)``
    returns the excess ``size(v) - delta`` to side 1.
    """
    x = piece.parent[v]
    assert x is not None
    Tv = piece.subtree_nodes(v)
    excess = len(Tv) - delta
    if excess == 0:
        return Separation(
            side1=frozenset(uni - Tv),
            side2=frozenset(Tv),
            s1=frozenset({r1, x}),
            s2=frozenset({v, r2}),
            cut_edges=((x, v),),
        )
    inner = lemma1_split(tree, v, r2, excess, universe=Tv)
    # inner.side2 (~excess nodes) returns to side 1; inner.side1 is our side 2.
    return Separation(
        side1=frozenset((uni - Tv) | inner.side2),
        side2=inner.side1,
        s1=frozenset({r1, x}) | inner.s2,
        s2=inner.s1,
        cut_edges=((x, v),) + tuple((b, a) for a, b in inner.cut_edges),
    )
