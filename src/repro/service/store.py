"""Filesystem-backed job store and shard queues for the service fleet.

Layout under one root directory::

    root/
      jobs/<job_id>/scenario.json    submitted document (verbatim)
      jobs/<job_id>/meta.json        status, shard, priority, attempts, pid
      jobs/<job_id>/result.json      RuntimeResult + exit_code (terminal)
      jobs/<job_id>/checkpoint.json  periodic atomic Runtime checkpoint
      jobs/<job_id>/trace.jsonl      streamed JSONL trace (scenario.trace)
      queue/shard<k>/<marker>        empty marker files = the queue
      running/shard<k>/<marker>      marker moved here while claimed
      stop                           flag file: workers drain and exit

Coordination is *rename-only*: a worker claims a job by renaming its
queue marker into ``running/`` (atomic on POSIX — exactly one claimant
can win), completes it by deleting the marker, and the fleet requeues a
dead worker's job by renaming the marker back.  All JSON writes go
through tmp + ``os.replace``, so a SIGKILL at any instant leaves either
the old file or the new file, never a torn one.  No locks, no daemons,
no pickle.

Marker names sort the queue: ``p<999-priority>-s<seq>-<job_id>`` — higher
priority first, then submission order (FIFO within a priority class).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

__all__ = ["Store", "JobRecord", "JOB_STATES", "DeadWorkerError"]

#: service-level job lifecycle (distinct from runtime job statuses):
#: ``queued`` -> ``running`` -> ``done`` | ``failed``; a job whose worker
#: died goes back to ``queued`` (with the checkpoint intact) until a
#: worker resumes it
JOB_STATES = ("queued", "running", "done", "failed")


def _pid_alive(pid: int | None) -> bool:
    """Best-effort liveness probe for a worker pid (signal 0)."""
    if pid is None:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


class DeadWorkerError(RuntimeError):
    """A waited-on job is ``running`` but its claiming worker is dead.

    Raised by :meth:`Store.wait_terminal` instead of blocking for the
    full timeout: the job cannot finish until someone calls
    ``Fleet.recover()``, so waiting is pure latency.  Carries the
    structured facts a supervisor needs: which job, which shard owned
    it, the dead pid, and how stale the heartbeat is.
    """

    def __init__(self, job_id: str, shard: int, worker_pid: int | None,
                 stale_for: float):
        super().__init__(
            f"job {job_id!r} is running on shard {shard} but its worker "
            f"(pid {worker_pid}) is dead and its heartbeat is "
            f"{stale_for:.1f}s stale; recover() must requeue it"
        )
        self.job_id = job_id
        self.shard = shard
        self.worker_pid = worker_pid
        self.stale_for = stale_for


@dataclass
class JobRecord:
    """One job's metadata, as stored in ``meta.json``."""

    id: str
    name: str
    status: str
    shard: int
    priority: int = 1
    weight: int = 0
    seq: int = 0
    attempts: int = 0
    worker_pid: int | None = None
    error: str | None = None

    def as_dict(self) -> dict:
        return {
            "id": self.id,
            "name": self.name,
            "status": self.status,
            "shard": self.shard,
            "priority": self.priority,
            "weight": self.weight,
            "seq": self.seq,
            "attempts": self.attempts,
            "worker_pid": self.worker_pid,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "JobRecord":
        return cls(**d)


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    tmp.write_text(text)
    tmp.replace(path)


class Store:
    """Handle on one service root directory (safe to open from any
    process; every mutation is an atomic rename or replace)."""

    def __init__(self, root: str | Path, n_shards: int = 1):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.root = Path(root)
        self.n_shards = n_shards
        self.jobs_dir = self.root / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        for shard in range(n_shards):
            self.queue_dir(shard).mkdir(parents=True, exist_ok=True)
            self.running_dir(shard).mkdir(parents=True, exist_ok=True)

    # -- paths ----------------------------------------------------------
    def queue_dir(self, shard: int) -> Path:
        return self.root / "queue" / f"shard{shard:03d}"

    def running_dir(self, shard: int) -> Path:
        return self.root / "running" / f"shard{shard:03d}"

    def job_dir(self, job_id: str) -> Path:
        return self.jobs_dir / job_id

    def scenario_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "scenario.json"

    def meta_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "meta.json"

    def result_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "result.json"

    def checkpoint_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "checkpoint.json"

    def trace_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "trace.jsonl"

    def admissions_dir(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "admissions"

    def stop_path(self) -> Path:
        return self.root / "stop"

    # -- stop flag ------------------------------------------------------
    def request_stop(self) -> None:
        self.stop_path().write_text("stop\n")

    def clear_stop(self) -> None:
        self.stop_path().unlink(missing_ok=True)

    def stopping(self) -> bool:
        return self.stop_path().exists()

    # -- submission -----------------------------------------------------
    @staticmethod
    def _marker(priority: int, seq: int, job_id: str) -> str:
        # lexicographic order == scheduling order: higher priority first
        # (999 - p inverts), then submission sequence
        return f"p{999 - min(priority, 999):03d}-s{seq:08d}-{job_id}"

    @staticmethod
    def marker_job_id(marker: str) -> str:
        return marker.split("-", 2)[2]

    def enqueue(self, job_id: str, scenario_doc: dict, record: JobRecord) -> None:
        """Persist a new job and make it claimable on its shard's queue.

        The meta/scenario files land *before* the queue marker: a worker
        that sees the marker can rely on the documents being complete.
        """
        jd = self.job_dir(job_id)
        jd.mkdir(parents=True, exist_ok=True)
        _atomic_write(self.scenario_path(job_id), json.dumps(scenario_doc, indent=2) + "\n")
        self.write_meta(record)
        marker = self._marker(record.priority, record.seq, job_id)
        (self.queue_dir(record.shard) / marker).write_text("")

    # -- worker claim / complete ---------------------------------------
    def claim(self, shard: int) -> str | None:
        """Atomically claim the highest-priority queued job on ``shard``.

        Returns the job id, or ``None`` when the queue is empty.  Claiming
        races (two workers, or a worker vs. a requeue) are settled by the
        filesystem: ``os.rename`` succeeds for exactly one caller.
        """
        qdir = self.queue_dir(shard)
        rdir = self.running_dir(shard)
        for marker in sorted(os.listdir(qdir)):
            try:
                os.rename(qdir / marker, rdir / marker)
            except FileNotFoundError:
                continue  # lost the race for this marker; try the next
            job_id = self.marker_job_id(marker)
            rec = self.read_meta(job_id)
            rec.status = "running"
            rec.worker_pid = os.getpid()
            rec.attempts += 1
            self.write_meta(rec)
            return job_id
        return None

    def _find_running_marker(self, shard: int, job_id: str) -> Path | None:
        for marker in os.listdir(self.running_dir(shard)):
            if self.marker_job_id(marker) == job_id:
                return self.running_dir(shard) / marker
        return None

    def complete(self, job_id: str, shard: int, result_doc: dict,
                 *, status: str = "done", error: str | None = None) -> None:
        """Publish a terminal result and release the running marker.

        Order matters for crash-safety: result first, then meta, then the
        marker — a crash between steps leaves the job ``running`` with a
        result present, which recovery resolves in the job's favour
        (see :meth:`requeue_running`).
        """
        _atomic_write(self.result_path(job_id), json.dumps(result_doc, indent=2) + "\n")
        rec = self.read_meta(job_id)
        rec.status = status
        rec.error = error
        rec.worker_pid = None
        self.write_meta(rec)
        marker = self._find_running_marker(shard, job_id)
        if marker is not None:
            marker.unlink(missing_ok=True)

    def heartbeat(self, job_id: str) -> None:
        """Touch the job dir's mtime so a supervisor can see liveness."""
        os.utime(self.job_dir(job_id))

    # -- recovery -------------------------------------------------------
    def running_jobs(self, shard: int) -> list[str]:
        return [
            self.marker_job_id(m) for m in sorted(os.listdir(self.running_dir(shard)))
        ]

    def requeue_running(self, shard: int, job_id: str, new_shard: int) -> bool:
        """Move a (dead worker's) running job back onto a queue.

        ``new_shard`` may differ from ``shard`` — that is shard migration:
        the job's checkpoint travels with it (it lives under ``jobs/``),
        so whichever worker claims it resumes bit-identically.  If a
        terminal result was already published (the worker died *after*
        :meth:`complete` wrote it), the job is finalised instead of
        re-run.  Returns True when the job went back on a queue.
        """
        marker = self._find_running_marker(shard, job_id)
        if marker is None:
            return False
        rec = self.read_meta(job_id)
        if self.result_path(job_id).exists():
            # the worker finished the work and died in the gap before
            # releasing the marker: keep the published result
            if rec.status == "running":
                rec.status = "done"
                rec.worker_pid = None
                self.write_meta(rec)
            marker.unlink(missing_ok=True)
            return False
        rec.status = "queued"
        rec.worker_pid = None
        rec.shard = new_shard
        self.write_meta(rec)
        new_marker = self._marker(rec.priority, rec.seq, job_id)
        try:
            os.rename(marker, self.queue_dir(new_shard) / new_marker)
        except FileNotFoundError:
            return False  # someone else recovered it first
        return True

    # -- reads ----------------------------------------------------------
    def read_meta(self, job_id: str) -> JobRecord:
        return JobRecord.from_dict(json.loads(self.meta_path(job_id).read_text()))

    def write_meta(self, record: JobRecord) -> None:
        _atomic_write(self.meta_path(record.id), json.dumps(record.as_dict(), indent=2) + "\n")

    def read_scenario_doc(self, job_id: str) -> dict:
        return json.loads(self.scenario_path(job_id).read_text())

    def read_result(self, job_id: str) -> dict | None:
        path = self.result_path(job_id)
        if not path.exists():
            return None
        return json.loads(path.read_text())

    # -- live admissions ------------------------------------------------
    def write_admission(self, job_id: str, cycle: int, spec_doc: dict) -> str:
        """Persist one mid-run arrival: admit ``spec_doc`` at ``cycle``.

        Files are numbered so :meth:`read_admissions` replays them in
        submission order; the atomic write means a worker polling the
        directory never sees a half-written arrival.
        """
        d = self.admissions_dir(job_id)
        d.mkdir(parents=True, exist_ok=True)
        seq = len(list(d.glob("admit-*.json")))
        while (d / f"admit-{seq:04d}.json").exists():
            seq += 1
        name = f"admit-{seq:04d}.json"
        _atomic_write(
            d / name,
            json.dumps({"cycle": int(cycle), "spec": spec_doc}, indent=2) + "\n",
        )
        return name

    def read_admissions(self, job_id: str) -> list[tuple[int, dict]]:
        """Every persisted arrival for ``job_id``, in submission order."""
        d = self.admissions_dir(job_id)
        if not d.is_dir():
            return []
        out = []
        for path in sorted(d.glob("admit-*.json")):
            doc = json.loads(path.read_text())
            out.append((int(doc["cycle"]), doc["spec"]))
        return out

    def list_jobs(self) -> list[str]:
        return sorted(p.name for p in self.jobs_dir.iterdir() if p.is_dir())

    def outstanding_weight(self, shard: int) -> int:
        """Combined declared weight of this shard's queued + running jobs —
        the occupancy signal placement minimises."""
        total = 0
        for d in (self.queue_dir(shard), self.running_dir(shard)):
            for marker in os.listdir(d):
                try:
                    total += self.read_meta(self.marker_job_id(marker)).weight
                except (OSError, ValueError, KeyError):
                    continue  # job mid-removal; count it as gone
        return total

    def wait_terminal(self, job_ids, *, timeout: float = 60.0,
                      poll: float = 0.05,
                      stale_after: float | None = 2.0) -> dict[str, str]:
        """Block until every job reaches ``done``/``failed`` (or timeout).

        Returns ``{job_id: status}``; raises :class:`TimeoutError` with
        the stragglers' states when the deadline passes.

        Fail-fast: a ``running`` job whose claiming worker pid is dead
        *and* whose heartbeat (the job dir's mtime — touched by
        :meth:`heartbeat` and every checkpoint write) has been quiet for
        ``stale_after`` seconds can only finish after a ``recover()``, so
        waiting out the timeout is pure latency — it raises
        :class:`DeadWorkerError` naming the dead shard instead.  Requeued
        jobs (status ``queued``, pid ``None``) never trip this.  Pass
        ``stale_after=None`` to wait out the timeout regardless.
        """
        deadline = time.monotonic() + timeout
        ids = list(job_ids)
        states: dict[str, str] = {}
        while True:
            records = {j: self.read_meta(j) for j in ids}
            states = {j: r.status for j, r in records.items()}
            if all(s in ("done", "failed") for s in states.values()):
                return states
            if stale_after is not None:
                for j, rec in records.items():
                    if rec.status != "running" or _pid_alive(rec.worker_pid):
                        continue
                    age = time.time() - self.job_dir(j).stat().st_mtime
                    if age >= stale_after:
                        raise DeadWorkerError(j, rec.shard, rec.worker_pid, age)
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"jobs not terminal after {timeout}s: "
                    f"{ {j: s for j, s in states.items() if s not in ('done', 'failed')} }"
                )
            time.sleep(poll)
