"""Simulation-as-a-service: scenarios, a worker fleet, and a REST API.

This package turns the multi-tenant :class:`~repro.runtime.Runtime` into a
service that absorbs heavy concurrent traffic (ROADMAP item 2):

* :mod:`repro.service.scenario` — the versioned **scenario JSON** clients
  submit: one host network, a set of :class:`~repro.runtime.JobSpec`
  tenants, an optional :class:`~repro.simulate.FaultSchedule`, and every
  engine/router/policy knob.  A scenario is the unit of placement and
  execution; ``run_scenario`` executes one directly in-process (the
  reference the service's results are gated bit-identical against).
* :mod:`repro.service.store` — a filesystem-backed job store and queue.
  Every coordination primitive is an atomic rename, so worker processes
  need no locks and a SIGKILL at any instant never corrupts state.
* :mod:`repro.service.worker` — the worker-process main loop: claim a job
  from the shard queue, build (or *restore*) the scenario's ``Runtime``,
  step it with periodic atomic checkpoints, publish the result.
* :mod:`repro.service.fleet` — the manager: spawns one worker process per
  shard, places submissions by occupancy/priority, detects dead workers
  and requeues their jobs (which then resume from the last checkpoint —
  crash recovery and shard migration are the same mechanism).
* :mod:`repro.service.api` / :mod:`~repro.service.client` — a stdlib
  ``ThreadingHTTPServer`` REST front end (submit / poll / stream trace /
  fetch artifacts) and the matching ``urllib`` client.
* :mod:`repro.service.loadgen` — replays hundreds of concurrent
  submissions against a fleet or API to benchmark service throughput
  (``benchmarks/bench_service.py``).

Everything is standard library + the package's own machinery: no web
framework, no broker daemon, no pickle on the wire — scenario JSON in,
result JSON out.
"""

from .client import ServiceClient
from .fleet import Fleet
from .loadgen import LoadReport, run_load, scenario_variants
from .scenario import SCENARIO_VERSION, Scenario, drive_runtime, run_scenario
from .store import JobRecord, Store

__all__ = [
    "SCENARIO_VERSION",
    "Scenario",
    "run_scenario",
    "drive_runtime",
    "Store",
    "JobRecord",
    "Fleet",
    "ServiceClient",
    "run_load",
    "scenario_variants",
    "LoadReport",
]
