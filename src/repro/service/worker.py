"""Worker process: claim scenarios from one shard queue and run them.

Each worker owns at most one live :class:`~repro.runtime.Runtime` at a
time.  The loop is deliberately crash-oblivious — all durable state lives
in the :class:`~repro.service.store.Store`, so a worker may be SIGKILLed
at any instant and the fleet's recovery pass will requeue its job, whose
next runner resumes from the last atomic checkpoint:

1. claim the highest-priority queued job (atomic rename),
2. *restore* the runtime from ``jobs/<id>/checkpoint.json`` if one exists
   (this is the crash-recovery / migration path), else build it from the
   scenario document,
3. drive it to a terminal state with periodic atomic checkpoints,
4. publish ``result.json`` and release the running marker.

A scenario that ends *degraded* (incomplete jobs, dropped messages) is
still ``done`` — the runtime delivered its contract of a degraded result;
``exit_code`` 1 in the result document mirrors the ``runtime`` CLI.  Only
an exception (e.g. :class:`~repro.simulate.RepairError` when the
embedding slack is exhausted) marks the job ``failed``.
"""

from __future__ import annotations

import time
import traceback

from ..obs import TraceRecorder
from ..runtime import Runtime
from .scenario import Scenario, drive_runtime
from .store import Store

__all__ = ["worker_main", "run_one_job"]


def run_one_job(store: Store, shard: int, job_id: str) -> None:
    """Execute one claimed job to a terminal record (never raises)."""
    try:
        scenario = Scenario.from_obj(store.read_scenario_doc(job_id))
        recorder = (
            TraceRecorder(path=store.trace_path(job_id)) if scenario.trace else None
        )
        try:
            ckpt = store.checkpoint_path(job_id)
            if ckpt.exists():
                rt = Runtime.restore_json(ckpt, recorder=recorder)
            else:
                rt = scenario.build_runtime(recorder=recorder)
            res = drive_runtime(
                rt,
                batch=scenario.batch,
                checkpoint_path=ckpt,
                checkpoint_every=scenario.checkpoint_every,
                heartbeat=lambda: store.heartbeat(job_id),
                admissions=store.read_admissions(job_id),
                admission_poll=lambda: store.read_admissions(job_id),
            )
        finally:
            if recorder is not None:
                recorder.close()
        store.complete(
            job_id,
            shard,
            {
                "result": res.as_dict(),
                "complete": res.complete,
                "exit_code": 0 if res.complete else 1,
            },
            status="done",
        )
    except Exception as exc:  # terminal failure: record it, keep serving
        store.complete(
            job_id,
            shard,
            {
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(),
                "exit_code": 1,
            },
            status="failed",
            error=f"{type(exc).__name__}: {exc}",
        )


def worker_main(
    root: str,
    shard: int,
    n_shards: int,
    *,
    poll: float = 0.02,
    max_jobs: int | None = None,
) -> int:
    """Serve ``shard`` until the store's stop flag appears.

    Returns the number of jobs executed (``max_jobs`` caps it — used by
    tests to run a worker inline without a process).
    """
    store = Store(root, n_shards)
    served = 0
    while not store.stopping():
        job_id = store.claim(shard)
        if job_id is None:
            time.sleep(poll)
            continue
        run_one_job(store, shard, job_id)
        served += 1
        if max_jobs is not None and served >= max_jobs:
            break
    return served
