"""Fleet manager: worker processes, placement, and crash recovery.

A :class:`Fleet` owns ``n_shards`` worker processes (one per shard, each
running :func:`repro.service.worker.worker_main`) over one shared
:class:`~repro.service.store.Store`.  It is the only component that
*spawns* anything; all job state stays in the store, so a fleet can be
torn down and a new one pointed at the same root to pick up where the
old one left off.

Placement is occupancy-based against the runtime's load-16 admission
bound: a submission goes to the shard with the least outstanding
*weight* (the sum of queued + running scenarios' job capacities — the
same quantity each scenario will claim from its runtime's
``max_load``).  Ties break toward the lowest shard index, which keeps
placement deterministic for a fixed submission order.  Priority does not
affect placement, only ordering *within* a shard's queue (the marker
sort in the store).

Recovery (:meth:`Fleet.recover`) scans ``running/`` markers: a marker
whose worker process is gone is renamed back onto a queue — possibly a
*different* shard's (shard migration), chosen by the same least-weight
rule.  The job's checkpoint lives under ``jobs/<id>/`` and travels with
it, so the next claimant resumes bit-identically.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
import uuid
from pathlib import Path

from .scenario import Scenario
from .store import JobRecord, Store, _pid_alive
from .worker import worker_main

__all__ = ["Fleet"]


class Fleet:
    """``n_shards`` worker processes over one store root."""

    def __init__(self, root: str | Path, n_shards: int = 2, *, poll: float = 0.02):
        self.store = Store(root, n_shards)
        self.n_shards = n_shards
        self.poll = poll
        self._workers: dict[int, mp.Process] = {}
        self._seq = 0
        # serialises placement: the API server submits from HTTP threads
        self._submit_lock = threading.Lock()

    # -- worker lifecycle ----------------------------------------------
    def _spawn(self, shard: int) -> mp.Process:
        proc = mp.Process(
            target=worker_main,
            args=(str(self.store.root), shard, self.n_shards),
            kwargs={"poll": self.poll},
            name=f"repro-worker-{shard}",
            daemon=True,
        )
        proc.start()
        return proc

    def start(self) -> None:
        """Clear any stale stop flag and bring up one worker per shard."""
        self.store.clear_stop()
        for shard in range(self.n_shards):
            if shard not in self._workers or not self._workers[shard].is_alive():
                self._workers[shard] = self._spawn(shard)

    def stop(self, *, timeout: float = 10.0) -> None:
        """Raise the stop flag and join the workers (terminate stragglers)."""
        self.store.request_stop()
        deadline = time.monotonic() + timeout
        for proc in self._workers.values():
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        self._workers.clear()

    def kill_worker(self, shard: int) -> int:
        """SIGKILL one worker (fault injection for tests/benchmarks).

        Returns the killed pid.  The worker gets no chance to clean up —
        exactly the crash :meth:`recover` exists for.
        """
        proc = self._workers[shard]
        pid = proc.pid
        proc.kill()
        proc.join(timeout=5.0)
        return pid

    def worker_pids(self) -> dict[int, int | None]:
        return {s: p.pid for s, p in self._workers.items()}

    # -- placement ------------------------------------------------------
    def _least_loaded_shard(self) -> int:
        weights = [
            (self.store.outstanding_weight(s), s) for s in range(self.n_shards)
        ]
        return min(weights)[1]

    def submit(self, scenario: Scenario, *, job_id: str | None = None) -> str:
        """Place a validated scenario on the least-loaded shard's queue.

        A caller-supplied ``job_id`` acts as an idempotency key: if that
        job already exists (a client retried a submission whose first
        attempt did reach us), the existing id is returned and nothing is
        enqueued twice.
        """
        if job_id is None:
            job_id = f"{scenario.name}-{uuid.uuid4().hex[:8]}"
        with self._submit_lock:
            if self.store.meta_path(job_id).exists():
                return job_id
            shard = self._least_loaded_shard()
            self._seq += 1
            record = JobRecord(
                id=job_id,
                name=scenario.name,
                status="queued",
                shard=shard,
                priority=scenario.priority,
                weight=scenario.weight,
                seq=self._seq,
            )
            self.store.enqueue(job_id, scenario.as_dict(), record)
        return job_id

    def submit_doc(self, doc: dict, *, job_id: str | None = None) -> str:
        """Validate a raw scenario document, then submit it."""
        return self.submit(Scenario.from_obj(doc), job_id=job_id)

    # -- recovery -------------------------------------------------------
    def recover(self) -> list[str]:
        """Requeue every running job whose worker is dead, respawn workers.

        Returns the requeued job ids.  Jobs that already published a
        result are finalised instead of requeued (the store resolves that
        race).  A requeued job may land on a different shard — migration —
        and resumes from its checkpoint there.
        """
        requeued: list[str] = []
        for shard in range(self.n_shards):
            proc = self._workers.get(shard)
            worker_dead = proc is None or not proc.is_alive()
            for job_id in self.store.running_jobs(shard):
                rec = self.store.read_meta(job_id)
                # a job is orphaned when the pid that claimed it is gone;
                # the shard's managed worker being dead implies that too
                if not worker_dead and _pid_alive(rec.worker_pid):
                    continue
                new_shard = self._least_loaded_shard()
                if self.store.requeue_running(shard, job_id, new_shard):
                    requeued.append(job_id)
        self.start()  # respawn any dead workers
        return requeued

    # -- introspection --------------------------------------------------
    def status(self) -> dict:
        """One JSON-safe snapshot of the whole fleet (the API serves this)."""
        jobs = []
        for job_id in self.store.list_jobs():
            try:
                jobs.append(self.store.read_meta(job_id).as_dict())
            except (OSError, ValueError):
                continue  # submission mid-write
        return {
            "n_shards": self.n_shards,
            "workers": {
                str(s): {"pid": p.pid, "alive": p.is_alive()}
                for s, p in self._workers.items()
            },
            "outstanding_weight": {
                str(s): self.store.outstanding_weight(s)
                for s in range(self.n_shards)
            },
            "jobs": jobs,
        }

    def wait(self, job_ids, *, timeout: float = 60.0) -> dict[str, str]:
        return self.store.wait_terminal(job_ids, timeout=timeout)

    # -- context manager ------------------------------------------------
    def __enter__(self) -> "Fleet":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
