"""Versioned scenario documents: what a client submits to the service.

A *scenario* is one complete, declarative :class:`~repro.runtime.Runtime`
session: the host network, the tenant :class:`~repro.runtime.JobSpec`\\ s,
an optional :class:`~repro.simulate.FaultSchedule` played on the global
clock, and the engine/router/policy knobs.  It is the service's unit of
submission, placement, execution, and recovery.

The JSON schema (``version`` is required and checked — the wire format is
a compatibility promise, like checkpoints):

.. code-block:: json

    {
      "version": 1,
      "name": "hot-spot-small",
      "description": "optional free text",
      "priority": 1,
      "host": {"name": "xtree", "args": [3]},
      "policy": "fair",
      "router": "deterministic",
      "engine": "auto",
      "max_load": 16,
      "link_capacity": 1,
      "batch": false,
      "trace": false,
      "checkpoint_every": 10,
      "faults": {"events": [{"cycle": 1, "action": "fail_node", "u": [2, 1]}]},
      "jobs": [{"name": "a", "program": "reduction", "tree_n": 15,
                "capacity": 4, "height": 3}]
    }

``jobs`` entries are verbatim :meth:`repro.runtime.JobSpec.from_obj`
documents; ``faults`` is a verbatim
:meth:`repro.simulate.FaultSchedule.from_obj` document (or the bare event
list).  ``policy`` and ``router`` accept either a registry name (as
above) or an inline :class:`repro.policy.PolicyDoc` document — a tuned
decision tree travels inside the scenario it was tuned for, so the
service needs no side channel to run it.  Unknown keys anywhere raise
:class:`ValueError` — a typo'd knob must not silently run with defaults.

Determinism contract: a scenario fully determines its
:class:`~repro.runtime.RuntimeResult`.  ``run_scenario`` in-process, a
worker process on any shard, and a worker that was SIGKILLed and resumed
from a checkpoint all produce *bit-identical* result dicts — gated in
``tests/test_service.py`` and ``benchmarks/bench_service.py``.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field
from pathlib import Path

from ..networks import TOPOLOGIES
from ..policy.dsl import PolicyDoc
from ..runtime import AdmissionError, Job, JobSpec, Runtime, RuntimeResult
from ..runtime.policies import make_policy
from ..simulate import ENGINES, FaultSchedule
from ..simulate.routing import ROUTERS

__all__ = ["SCENARIO_VERSION", "Scenario", "run_scenario", "drive_runtime"]

#: wire-format version of the scenario document; bumped on breaking change
SCENARIO_VERSION = 1

_KNOWN_KEYS = {
    "version", "name", "description", "priority", "host", "policy",
    "router", "engine", "max_load", "link_capacity", "batch", "trace",
    "checkpoint_every", "faults", "jobs",
}


@dataclass(frozen=True)
class Scenario:
    """One validated scenario document (see the module docstring)."""

    name: str
    host_name: str
    host_args: tuple = ()
    jobs: tuple[JobSpec, ...] = ()
    faults: FaultSchedule | None = None
    #: registry name, or an inline routing-domain policy document (dict)
    router: str | dict = "deterministic"
    #: registry name, or an inline scheduling-domain policy document (dict)
    policy: str | dict | None = None
    engine: str = "auto"
    max_load: int = 16
    link_capacity: int = 1
    batch: bool = False
    trace: bool = False
    checkpoint_every: int = 10
    priority: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario needs a non-empty name")
        if self.host_name not in TOPOLOGIES:
            raise ValueError(
                f"unknown host topology {self.host_name!r}: "
                f"expected one of {sorted(TOPOLOGIES)}"
            )
        if not self.jobs:
            raise ValueError(f"scenario {self.name!r} has no jobs")
        # inline documents are validated (and canonicalised) via PolicyDoc
        # so a malformed tree is rejected at submission, not on a worker
        if isinstance(self.router, dict):
            doc = PolicyDoc.from_obj(self.router)
            if doc.domain != "routing":
                raise ValueError(
                    f"scenario router document {doc.name!r} has domain "
                    f"{doc.domain!r}, expected 'routing'"
                )
            object.__setattr__(self, "router", doc.as_dict())
        elif self.router not in ROUTERS:
            raise ValueError(
                f"unknown router {self.router!r}: expected one of {sorted(ROUTERS)}"
            )
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}: expected one of {ENGINES}"
            )
        if isinstance(self.policy, dict):
            doc = PolicyDoc.from_obj(self.policy)
            if doc.domain != "scheduling":
                raise ValueError(
                    f"scenario policy document {doc.name!r} has domain "
                    f"{doc.domain!r}, expected 'scheduling'"
                )
            object.__setattr__(self, "policy", doc.as_dict())
        else:
            make_policy(self.policy)  # raises on unknown policy names
        if self.priority < 1:
            raise ValueError(f"priority must be >= 1, got {self.priority}")
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        names = [j.name for j in self.jobs]
        if len(set(names)) != len(names):
            raise ValueError(f"scenario {self.name!r} has duplicate job names")

    # -- wire format ----------------------------------------------------
    @classmethod
    def from_obj(cls, obj: dict) -> "Scenario":
        """Parse and validate one scenario document (parsed JSON)."""
        if not isinstance(obj, dict):
            raise ValueError(f"scenario must be a JSON object, got {type(obj).__name__}")
        version = obj.get("version")
        if version != SCENARIO_VERSION:
            raise ValueError(
                f"unsupported scenario version {version!r} "
                f"(this build reads {SCENARIO_VERSION})"
            )
        unknown = set(obj) - _KNOWN_KEYS
        if unknown:
            raise ValueError(f"unknown scenario fields: {sorted(unknown)}")
        for key in ("name", "host", "jobs"):
            if key not in obj:
                raise ValueError(f"scenario is missing required field {key!r}")
        host = obj["host"]
        if not isinstance(host, dict) or "name" not in host:
            raise ValueError('scenario "host" must be {"name": ..., "args": [...]}')
        faults = obj.get("faults")
        return cls(
            name=obj["name"],
            host_name=host["name"],
            host_args=tuple(host.get("args", ())),
            jobs=tuple(JobSpec.from_obj(j) for j in obj["jobs"]),
            faults=None if faults is None else FaultSchedule.from_obj(faults),
            router=obj.get("router", "deterministic"),
            policy=obj.get("policy"),
            engine=obj.get("engine", "auto"),
            max_load=obj.get("max_load", 16),
            link_capacity=obj.get("link_capacity", 1),
            batch=bool(obj.get("batch", False)),
            trace=bool(obj.get("trace", False)),
            checkpoint_every=obj.get("checkpoint_every", 10),
            priority=obj.get("priority", 1),
            description=obj.get("description", ""),
        )

    @classmethod
    def from_json(cls, path: str | Path) -> "Scenario":
        return cls.from_obj(json.loads(Path(path).read_text()))

    def as_dict(self) -> dict:
        """JSON-safe round-trip form (``from_obj(as_dict())`` is identity)."""
        d: dict = {
            "version": SCENARIO_VERSION,
            "name": self.name,
            "host": {"name": self.host_name, "args": list(self.host_args)},
            "jobs": [j.as_dict() for j in self.jobs],
        }
        if self.description:
            d["description"] = self.description
        if self.faults is not None:
            # to_obj stamps the fault-schedule version when byzantine
            # events are present, so they survive the service wire
            d["faults"] = self.faults.to_obj()
        if self.router != "deterministic":
            d["router"] = copy.deepcopy(self.router)
        if self.policy is not None:
            d["policy"] = copy.deepcopy(self.policy)
        if self.engine != "auto":
            d["engine"] = self.engine
        if self.max_load != 16:
            d["max_load"] = self.max_load
        if self.link_capacity != 1:
            d["link_capacity"] = self.link_capacity
        if self.batch:
            d["batch"] = True
        if self.trace:
            d["trace"] = True
        if self.checkpoint_every != 10:
            d["checkpoint_every"] = self.checkpoint_every
        if self.priority != 1:
            d["priority"] = self.priority
        return d

    # -- placement signals ---------------------------------------------
    @property
    def weight(self) -> int:
        """Occupancy the scenario will claim: the sum of its jobs' capacity
        shares of the load-16 bound.  The fleet places scenarios on the
        shard with the least outstanding weight, so a host-filling
        contention scenario counts 4x a single capacity-4 tenant."""
        return sum(j.capacity for j in self.jobs)

    # -- execution ------------------------------------------------------
    def build_runtime(self, *, recorder=None) -> Runtime:
        """Instantiate the runtime and admit every job (admission order =
        document order, which fixes the schedule deterministically)."""
        host = TOPOLOGIES[self.host_name](*self.host_args)
        rt = Runtime(
            host,
            router=self.router,
            faults=self.faults,
            recorder=recorder,
            policy=self.policy,
            max_load=self.max_load,
            link_capacity=self.link_capacity,
            engine=self.engine,
        )
        for spec in self.jobs:
            rt.admit(spec)
        return rt


def _atomic_checkpoint(rt: Runtime, path: Path) -> None:
    """Checkpoint via tmp + rename: a SIGKILL mid-write must never leave a
    truncated checkpoint behind (the recovery path reads this file)."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(rt.checkpoint(), indent=2) + "\n")
    tmp.replace(path)


def _normalise_admissions(entries) -> list[tuple[int, JobSpec]]:
    """``(cycle, spec-or-dict)`` pairs into sorted ``(cycle, JobSpec)``."""
    out = []
    for cycle, spec in entries or ():
        if not isinstance(spec, JobSpec):
            spec = JobSpec.from_obj(spec)
        out.append((int(cycle), spec))
    out.sort(key=lambda e: (e[0], e[1].name))
    return out


def _admit_due(
    rt: Runtime,
    pending: list[tuple[int, JobSpec]],
    attempted: set[str],
    *,
    up_to: int | None = None,
) -> list[tuple[int, JobSpec]]:
    """Admit every pending spec whose cycle has arrived; return the rest.

    Specs whose job name is already in the runtime are skipped silently —
    that makes replayed admissions idempotent across a crash/resume (the
    admitted job travels in the checkpoint).  An over-load admission
    counts ``admit.rejected`` and is dropped; a successful one counts
    ``admit.live``.
    """
    cutoff = rt.cycle if up_to is None else max(rt.cycle, up_to)
    keep: list[tuple[int, JobSpec]] = []
    for cycle, spec in pending:
        if cycle > cutoff:
            keep.append((cycle, spec))
            continue
        attempted.add(spec.name)
        if any(j.spec.name == spec.name for j in rt.jobs):
            continue
        try:
            rt.admit(spec)
        except AdmissionError:
            rt.counters["admit.rejected"] += 1
        else:
            rt.counters["admit.live"] += 1
    return keep


def drive_runtime(
    rt: Runtime,
    *,
    batch: bool = False,
    checkpoint_path: str | Path | None = None,
    checkpoint_every: int = 10,
    heartbeat=None,
    admissions=None,
    admission_poll=None,
) -> RuntimeResult:
    """Step ``rt`` to a terminal state with periodic atomic checkpoints.

    The single stepping loop the whole service shares — the in-process
    reference (:func:`run_scenario`), the worker processes, and the CLI
    all drive runtimes through it, so there is exactly one behaviour to
    trust for the bit-identity gates.  ``heartbeat`` (if given) is called
    once per checkpoint interval so a supervisor can see liveness.

    ``admissions`` is a list of ``(cycle, JobSpec-or-dict)`` arrivals to
    admit mid-run: each is admitted before the first superstep at or
    after its cycle.  When every resident job drains before an arrival's
    cycle, the arrival is admitted immediately (the runtime clock only
    advances by running work, so waiting would deadlock).
    ``admission_poll`` (if given) re-reads the authoritative arrival list
    once per checkpoint interval and at idle — the worker points it at
    the job store so ``POST /v1/jobs/<id>/admit`` lands mid-run.  Specs
    already admitted or already attempted are skipped, which keeps
    replayed admissions idempotent across crash/resume.
    """
    path = None if checkpoint_path is None else Path(checkpoint_path)
    attempted: set[str] = set()
    pending = _normalise_admissions(admissions)

    def _poll() -> None:
        nonlocal pending
        if admission_poll is not None:
            pending = [
                (c, s)
                for c, s in _normalise_admissions(admission_poll())
                if s.name not in attempted
                and not any(j.spec.name == s.name for j in rt.jobs)
            ]

    steps = 0
    while True:
        pending = _admit_due(rt, pending, attempted)
        if (rt.step_batch() if batch else rt.step()) not in ([], None):
            steps += 1
            if steps % checkpoint_every == 0:
                if path is not None:
                    _atomic_checkpoint(rt, path)
                if heartbeat is not None:
                    heartbeat()
                _poll()
            continue
        _poll()
        if not pending:
            break
        # idle with future arrivals: admit the earliest batch now
        pending = _admit_due(rt, pending, attempted, up_to=pending[0][0])
    if path is not None:
        _atomic_checkpoint(rt, path)
    return rt.result()


def run_scenario(
    scenario: Scenario,
    *,
    recorder=None,
    checkpoint_path: str | Path | None = None,
) -> RuntimeResult:
    """Execute one scenario in-process and return its result.

    If ``checkpoint_path`` names an existing file, the runtime *resumes*
    from it (bit-identically) instead of starting over — exactly what a
    worker does after a crash.  This function is the reference the
    service's distributed results are compared against.
    """
    path = None if checkpoint_path is None else Path(checkpoint_path)
    if path is not None and path.exists():
        rt = Runtime.restore_json(path, recorder=recorder)
    else:
        rt = scenario.build_runtime(recorder=recorder)
    return drive_runtime(
        rt,
        batch=scenario.batch,
        checkpoint_path=path,
        checkpoint_every=scenario.checkpoint_every,
    )
