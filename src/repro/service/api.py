"""REST front end for a :class:`~repro.service.fleet.Fleet` (stdlib only).

A thin ``http.server.ThreadingHTTPServer`` — no web framework.  JSON in,
JSON out; traces stream as JSON Lines.  Routes:

====== ============================ ==========================================
POST   ``/v1/jobs[?id=<id>]``       body = scenario JSON -> ``{"id": ...}``
POST   ``/v1/jobs/<id>/admit``      body = ``{"cycle", "spec"}`` mid-run arrival
GET    ``/v1/jobs``                 all job metadata records
GET    ``/v1/jobs/<id>``            one job's metadata (status, shard, ...)
GET    ``/v1/jobs/<id>/scenario``   the submitted document, verbatim
GET    ``/v1/jobs/<id>/result``     terminal result (409 while running)
GET    ``/v1/jobs/<id>/trace``      streamed JSONL trace (404 if untraced)
GET    ``/v1/fleet``                workers, per-shard occupancy, job table
POST   ``/v1/recover``              requeue dead workers' jobs, respawn
GET    ``/v1/healthz``              liveness probe
====== ============================ ==========================================

Error contract: invalid scenario documents are a 400 with the
:class:`ValueError` text; unknown job ids are 404; a result requested
before the job is terminal is 409 (retry later) so clients can
distinguish "not yet" from "never existed".

Submission is idempotent when the client supplies ``?id=<job_id>``: a
retried POST whose first attempt already reached the fleet replays to
the same job (200 with the existing id) instead of enqueueing a
duplicate — what lets :meth:`~repro.service.client.ServiceClient.submit`
retry a non-idempotent verb safely.
"""

from __future__ import annotations

import json
import re
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..runtime import JobSpec
from .fleet import Fleet

__all__ = ["ApiServer", "serve"]


class _Server(ThreadingHTTPServer):
    # the default backlog of 5 resets connections under concurrent load
    # generation (100+ simultaneous submits); match the load we benchmark
    request_queue_size = 256
    daemon_threads = True

#: refuse request bodies above this size (a scenario document is small;
#: anything bigger is a client bug, not a workload)
MAX_BODY = 4 * 1024 * 1024

#: client-supplied job ids become directory names under the store root,
#: so they must be plain path-safe tokens (no separators, no dotfiles)
_JOB_ID_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]{0,127}")


class _Handler(BaseHTTPRequestHandler):
    # set by ApiServer
    fleet: Fleet

    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------
    def log_message(self, fmt: str, *args) -> None:  # noqa: A003
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    def _json(self, code: int, payload) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str) -> None:
        self._json(code, {"error": message})

    def _read_body(self) -> bytes | None:
        length = int(self.headers.get("Content-Length", 0))
        if length > MAX_BODY:
            self._error(413, f"body too large ({length} > {MAX_BODY} bytes)")
            return None
        return self.rfile.read(length)

    # -- routes ---------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802
        path, _, query = self.path.partition("?")
        parts = [p for p in path.split("/") if p]
        if parts == ["v1", "jobs"]:
            body = self._read_body()
            if body is None:
                return
            try:
                doc = json.loads(body)
            except json.JSONDecodeError as exc:
                return self._error(400, f"body is not JSON: {exc}")
            requested = urllib.parse.parse_qs(query).get("id", [None])[0]
            if requested is not None and not _JOB_ID_RE.fullmatch(requested):
                return self._error(400, f"invalid job id: {requested!r}")
            if requested is not None and self.fleet.store.meta_path(requested).exists():
                # idempotent replay: the first attempt of a retried
                # submission already landed, so acknowledge it (200, not
                # 201 — nothing new was created)
                return self._json(200, {"id": requested})
            try:
                job_id = self.fleet.submit_doc(doc, job_id=requested)
            except (ValueError, TypeError) as exc:
                return self._error(400, str(exc))
            return self._json(201, {"id": job_id})
        if len(parts) == 4 and parts[:2] == ["v1", "jobs"] and parts[3] == "admit":
            return self._post_admit(parts[2])
        if parts == ["v1", "recover"]:
            return self._json(200, {"requeued": self.fleet.recover()})
        self._error(404, f"no such route: POST {self.path}")

    def _post_admit(self, job_id: str) -> None:
        """``POST /v1/jobs/<id>/admit`` — queue one mid-run arrival.

        Body: ``{"cycle": C, "spec": <JobSpec document>}``.  The worker
        driving the scenario polls the store and admits the spec before
        the first superstep at or after cycle ``C`` (immediately, when
        the runtime is already past it or idle).
        """
        store = self.fleet.store
        if not store.meta_path(job_id).exists():
            return self._error(404, f"no such job: {job_id}")
        rec = store.read_meta(job_id)
        if rec.status in ("done", "failed"):
            return self._error(
                409, f"job {job_id} is {rec.status}; cannot admit into it"
            )
        body = self._read_body()
        if body is None:
            return
        try:
            doc = json.loads(body)
        except json.JSONDecodeError as exc:
            return self._error(400, f"body is not JSON: {exc}")
        if not isinstance(doc, dict) or "cycle" not in doc or "spec" not in doc:
            return self._error(400, 'admission body must be {"cycle": ..., "spec": ...}')
        try:
            cycle = int(doc["cycle"])
            if cycle < 0:
                raise ValueError(f"cycle must be >= 0, got {cycle}")
            JobSpec.from_obj(doc["spec"])  # validate before persisting
        except (ValueError, TypeError) as exc:
            return self._error(400, str(exc))
        name = store.write_admission(job_id, cycle, doc["spec"])
        return self._json(201, {"admission": name})

    def do_GET(self) -> None:  # noqa: N802
        parts = [p for p in self.path.split("/") if p]
        if parts == ["v1", "healthz"]:
            return self._json(200, {"ok": True})
        if parts == ["v1", "fleet"]:
            return self._json(200, self.fleet.status())
        if parts == ["v1", "jobs"]:
            return self._json(200, {"jobs": self.fleet.status()["jobs"]})
        if len(parts) in (3, 4) and parts[:2] == ["v1", "jobs"]:
            job_id = parts[2]
            store = self.fleet.store
            if not store.meta_path(job_id).exists():
                return self._error(404, f"no such job: {job_id}")
            if len(parts) == 3:
                return self._json(200, store.read_meta(job_id).as_dict())
            sub = parts[3]
            if sub == "scenario":
                return self._json(200, store.read_scenario_doc(job_id))
            if sub == "result":
                rec = store.read_meta(job_id)
                result = store.read_result(job_id)
                if result is None or rec.status not in ("done", "failed"):
                    return self._error(
                        409, f"job {job_id} is {rec.status}; result not ready"
                    )
                return self._json(200, result)
            if sub == "trace":
                path = store.trace_path(job_id)
                if not path.exists():
                    return self._error(
                        404, f"job {job_id} has no trace (scenario trace=false?)"
                    )
                data = path.read_bytes()
                self.send_response(200)
                self.send_header("Content-Type", "application/jsonl")
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)
                return
        self._error(404, f"no such route: GET {self.path}")


class ApiServer:
    """Owns the HTTP server thread pool bound to one fleet."""

    def __init__(self, fleet: Fleet, host: str = "127.0.0.1", port: int = 0,
                 *, verbose: bool = False):
        self.fleet = fleet
        handler = type("BoundHandler", (_Handler,), {"fleet": fleet})
        self.httpd = _Server((host, port), handler)
        self.httpd.verbose = verbose  # type: ignore[attr-defined]

    @property
    def address(self) -> str:
        host, port = self.httpd.server_address[:2]
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        self.httpd.serve_forever()

    def serve_background(self):
        """Start serving on a daemon thread; returns the thread."""
        import threading

        thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-api", daemon=True
        )
        thread.start()
        return thread

    def shutdown(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()


def serve(root: str, *, n_shards: int = 2, host: str = "127.0.0.1",
          port: int = 8642, verbose: bool = True) -> None:
    """Run a fleet + API in the foreground (the ``service serve`` CLI)."""
    fleet = Fleet(root, n_shards)
    fleet.start()
    server = ApiServer(fleet, host, port, verbose=verbose)
    print(f"serving {n_shards} shards from {root} at {server.address}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        fleet.stop()
