"""Load generator: replay many concurrent scenario submissions.

Drives a target — a local :class:`~repro.service.fleet.Fleet` or a
:class:`~repro.service.client.ServiceClient` over HTTP — with ``N``
concurrent submissions from a thread pool, waits for every job to go
terminal, and (optionally) verifies each distributed result
**bit-identical** against a direct in-process
:func:`~repro.service.scenario.run_scenario` of the same document.  That
per-job identity check is the service's core correctness gate: placement,
worker processes, HTTP, checkpointing, and recovery must all be invisible
in the results.

``benchmarks/bench_service.py`` and the ``service loadgen`` CLI are thin
wrappers over :func:`run_load`.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace

from .scenario import Scenario, run_scenario

__all__ = ["LoadReport", "run_load", "scenario_variants"]


def scenario_variants(base: Scenario, n: int, *, prefix: str | None = None) -> list[Scenario]:
    """``n`` submission-ready clones of ``base`` with distinct names.

    Distinct names keep job directories and reports tellable-apart; the
    *workload* is identical on purpose — each variant has a known-good
    reference result, so any divergence is the service's fault.
    """
    stem = prefix if prefix is not None else base.name
    return [replace(base, name=f"{stem}-{i:03d}") for i in range(n)]


@dataclass
class LoadReport:
    """Outcome of one load-generation run (JSON-safe via ``as_dict``)."""

    n_submitted: int = 0
    n_done: int = 0
    n_failed: int = 0
    n_exit0: int = 0
    n_verified: int = 0
    n_mismatched: int = 0
    #: sum of every job's deterministic makespan — the regression metric
    total_makespan_cycles: int = 0
    #: how many jobs each shard executed (from final meta records)
    jobs_per_shard: dict = field(default_factory=dict)
    #: jobs that ran more than once (worker died mid-job and it resumed)
    n_retried: int = 0
    wall_s: float = 0.0
    mismatched_ids: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.n_done == self.n_submitted
            and self.n_failed == 0
            and self.n_mismatched == 0
        )

    def as_dict(self) -> dict:
        return {
            "n_submitted": self.n_submitted,
            "n_done": self.n_done,
            "n_failed": self.n_failed,
            "n_exit0": self.n_exit0,
            "n_verified": self.n_verified,
            "n_mismatched": self.n_mismatched,
            "n_retried": self.n_retried,
            "total_makespan_cycles": self.total_makespan_cycles,
            "jobs_per_shard": dict(sorted(self.jobs_per_shard.items())),
            "wall_s": round(self.wall_s, 3),
            "mismatched_ids": list(self.mismatched_ids),
            "ok": self.ok,
        }


def _reference_results(scenarios: list[Scenario]) -> dict[str, dict]:
    """Direct in-process result per distinct document (keyed by its JSON).

    Scenarios are deterministic, so identical documents share one
    reference run — ``scenario_variants`` clones only differ by name, but
    the name rides inside the document, so each still verifies its own
    submission byte-for-byte.
    """
    refs: dict[str, dict] = {}
    for sc in scenarios:
        key = json.dumps(sc.as_dict(), sort_keys=True)
        if key not in refs:
            # RuntimeResult.as_dict is canonical (a JSON round-trip is the
            # identity), so the in-process reference compares directly
            # against results that crossed the service's wire
            refs[key] = run_scenario(sc).as_dict()
    return refs


def run_load(
    target,
    scenarios: list[Scenario],
    *,
    concurrency: int = 16,
    timeout: float = 120.0,
    verify: bool = True,
) -> LoadReport:
    """Submit every scenario concurrently to ``target`` and collect results.

    ``target`` is duck-typed: anything with ``submit(scenario) -> id`` plus
    fleet-style ``store``/``wait`` (a :class:`~repro.service.fleet.Fleet`),
    or client-style ``submit(doc)``/``wait``/``result``/``job``
    (a :class:`~repro.service.client.ServiceClient`).
    """
    is_fleet = hasattr(target, "store")
    report = LoadReport(n_submitted=len(scenarios))
    refs = _reference_results(scenarios) if verify else {}

    start = time.monotonic()
    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        if is_fleet:
            futures = [pool.submit(target.submit, sc) for sc in scenarios]
        else:
            futures = [pool.submit(target.submit, sc.as_dict()) for sc in scenarios]
        job_ids = [f.result() for f in futures]

    remaining = timeout
    for sc, job_id in zip(scenarios, job_ids):
        t0 = time.monotonic()
        if is_fleet:
            target.store.wait_terminal([job_id], timeout=max(remaining, 0.01))
            meta = target.store.read_meta(job_id).as_dict()
            result_doc = target.store.read_result(job_id)
        else:
            meta = target.wait(job_id, timeout=max(remaining, 0.01))
            result_doc = target.result(job_id)
        remaining -= time.monotonic() - t0

        if meta["status"] == "done":
            report.n_done += 1
        else:
            report.n_failed += 1
        if meta["attempts"] > 1:
            report.n_retried += 1
        shard = str(meta["shard"])
        report.jobs_per_shard[shard] = report.jobs_per_shard.get(shard, 0) + 1
        if result_doc is not None and result_doc.get("exit_code") == 0:
            report.n_exit0 += 1
        if result_doc is not None and "result" in result_doc:
            report.total_makespan_cycles += result_doc["result"]["makespan"]
            if verify:
                report.n_verified += 1
                key = json.dumps(sc.as_dict(), sort_keys=True)
                if result_doc["result"] != refs[key]:
                    report.n_mismatched += 1
                    report.mismatched_ids.append(job_id)

    report.wall_s = time.monotonic() - start
    return report
