"""``urllib``-based client for the service REST API.

Mirrors :mod:`repro.service.api` route by route; raises
:class:`ServiceError` with the server's error text on any non-2xx
response (except the polling helpers, which treat 409 as "not yet").

Transient connection failures are retried with capped exponential
backoff plus jitter — for GETs always, and for :meth:`ServiceClient.submit`
because it sends a client-generated job id as an idempotency key
(``POST /v1/jobs?id=...``), which makes the retry safe even when the
first attempt was actually processed before the socket dropped.
"""

from __future__ import annotations

import json
import random
import re
import time
import urllib.error
import urllib.parse
import urllib.request
import uuid

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """Non-2xx API response, with the HTTP status attached."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """Talk to one service endpoint, e.g. ``ServiceClient("http://127.0.0.1:8642")``."""

    def __init__(self, base_url: str, *, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing -------------------------------------------------------
    def _request(self, method: str, path: str, payload: dict | None = None,
                 *, idempotent: bool | None = None):
        # transient socket drops under heavy concurrency are retried for
        # idempotent requests only: every GET, plus POSTs that carry an
        # idempotency key (submit) — a bare POST might already have been
        # processed, so it gets exactly one shot
        if idempotent is None:
            idempotent = method == "GET"
        attempts = 5 if idempotent else 1
        for attempt in range(attempts):
            req = urllib.request.Request(
                self.base_url + path,
                method=method,
                data=None if payload is None else json.dumps(payload).encode(),
                headers={"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                    return resp.read()
            except urllib.error.HTTPError as exc:
                detail = exc.read().decode(errors="replace")
                try:
                    detail = json.loads(detail)["error"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    pass
                raise ServiceError(exc.code, detail) from None
            except (ConnectionError, urllib.error.URLError):
                if attempt == attempts - 1:
                    raise
                # capped exponential backoff; the jitter decorrelates
                # many clients stampeding a server that just came back
                delay = min(0.05 * (1 << attempt), 1.0)
                time.sleep(delay * (0.5 + random.random() * 0.5))

    def _get_json(self, path: str) -> dict:
        return json.loads(self._request("GET", path))

    # -- API ------------------------------------------------------------
    def healthz(self) -> bool:
        return bool(self._get_json("/v1/healthz").get("ok"))

    def submit(self, scenario_doc: dict, *, job_id: str | None = None) -> str:
        """Submit one scenario document; returns the assigned job id.

        The job id is chosen client-side (generated from the scenario
        name when not supplied) and sent as ``?id=`` — an idempotency key
        that lets the POST be retried through connection drops: if the
        first attempt reached the fleet, the retry replays to the same
        job instead of enqueueing a duplicate.
        """
        if job_id is None:
            name = re.sub(r"[^A-Za-z0-9._-]+", "-", str(scenario_doc.get("name", "job")))
            job_id = f"{name or 'job'}-{uuid.uuid4().hex[:12]}"
        path = "/v1/jobs?id=" + urllib.parse.quote(job_id, safe="")
        return json.loads(self._request("POST", path, scenario_doc, idempotent=True))["id"]

    def admit(self, job_id: str, cycle: int, spec_doc: dict) -> str:
        """Queue a mid-run arrival: admit ``spec_doc`` into the running
        scenario ``job_id`` at (or after) runtime cycle ``cycle``.
        Returns the admission file name recorded by the store."""
        body = {"cycle": cycle, "spec": spec_doc}
        return json.loads(
            self._request("POST", f"/v1/jobs/{job_id}/admit", body)
        )["admission"]

    def jobs(self) -> list[dict]:
        return self._get_json("/v1/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._get_json(f"/v1/jobs/{job_id}")

    def scenario(self, job_id: str) -> dict:
        return self._get_json(f"/v1/jobs/{job_id}/scenario")

    def result(self, job_id: str) -> dict:
        """Fetch a terminal result (raises ``ServiceError(409)`` while running)."""
        return self._get_json(f"/v1/jobs/{job_id}/result")

    def trace_lines(self, job_id: str) -> list[dict]:
        """Fetch a streamed JSONL trace as parsed records."""
        body = self._request("GET", f"/v1/jobs/{job_id}/trace")
        return [json.loads(line) for line in body.decode().splitlines() if line]

    def fleet(self) -> dict:
        return self._get_json("/v1/fleet")

    def recover(self) -> list[str]:
        return json.loads(self._request("POST", "/v1/recover", {}))["requeued"]

    # -- polling helpers ------------------------------------------------
    def wait(self, job_id: str, *, timeout: float = 60.0, poll: float = 0.02,
             poll_cap: float = 0.5) -> dict:
        """Poll until the job is terminal; returns its final metadata.

        The poll interval starts at ``poll`` and doubles up to
        ``poll_cap`` — fast jobs return promptly, long jobs don't hammer
        the server with a fixed-rate poll for minutes.
        """
        deadline = time.monotonic() + timeout
        delay = poll
        while True:
            meta = self.job(job_id)
            if meta["status"] in ("done", "failed"):
                return meta
            now = time.monotonic()
            if now > deadline:
                raise TimeoutError(
                    f"job {job_id} still {meta['status']} after {timeout}s"
                )
            time.sleep(min(delay, max(deadline - now, 0.0)))
            delay = min(delay * 2, poll_cap)

    def wait_result(self, job_id: str, *, timeout: float = 60.0) -> dict:
        """Wait for completion, then return the result document.

        Honours the API's 409 retry-later contract: metadata can turn
        terminal an instant before the result document is visible to this
        client, so a 409 here means "again shortly", not failure.
        """
        deadline = time.monotonic() + timeout
        self.wait(job_id, timeout=timeout)
        delay = 0.02
        while True:
            try:
                return self.result(job_id)
            except ServiceError as exc:
                if exc.status != 409 or time.monotonic() > deadline:
                    raise
            time.sleep(delay)
            delay = min(delay * 2, 0.25)
