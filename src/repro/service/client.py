"""``urllib``-based client for the service REST API.

Mirrors :mod:`repro.service.api` route by route; raises
:class:`ServiceError` with the server's error text on any non-2xx
response (except the polling helpers, which treat 409 as "not yet").
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """Non-2xx API response, with the HTTP status attached."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """Talk to one service endpoint, e.g. ``ServiceClient("http://127.0.0.1:8642")``."""

    def __init__(self, base_url: str, *, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing -------------------------------------------------------
    def _request(self, method: str, path: str, payload: dict | None = None):
        req = urllib.request.Request(
            self.base_url + path,
            method=method,
            data=None if payload is None else json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        # transient socket drops under heavy concurrency are retried for
        # idempotent GETs only; a POST might already have been processed
        attempts = 3 if method == "GET" else 1
        for attempt in range(attempts):
            try:
                with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                    return resp.read()
            except urllib.error.HTTPError as exc:
                detail = exc.read().decode(errors="replace")
                try:
                    detail = json.loads(detail)["error"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    pass
                raise ServiceError(exc.code, detail) from None
            except (ConnectionError, urllib.error.URLError):
                if attempt == attempts - 1:
                    raise
                time.sleep(0.05 * (attempt + 1))

    def _get_json(self, path: str) -> dict:
        return json.loads(self._request("GET", path))

    # -- API ------------------------------------------------------------
    def healthz(self) -> bool:
        return bool(self._get_json("/v1/healthz").get("ok"))

    def submit(self, scenario_doc: dict) -> str:
        """Submit one scenario document; returns the assigned job id."""
        return json.loads(self._request("POST", "/v1/jobs", scenario_doc))["id"]

    def jobs(self) -> list[dict]:
        return self._get_json("/v1/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._get_json(f"/v1/jobs/{job_id}")

    def scenario(self, job_id: str) -> dict:
        return self._get_json(f"/v1/jobs/{job_id}/scenario")

    def result(self, job_id: str) -> dict:
        """Fetch a terminal result (raises ``ServiceError(409)`` while running)."""
        return self._get_json(f"/v1/jobs/{job_id}/result")

    def trace_lines(self, job_id: str) -> list[dict]:
        """Fetch a streamed JSONL trace as parsed records."""
        body = self._request("GET", f"/v1/jobs/{job_id}/trace")
        return [json.loads(line) for line in body.decode().splitlines() if line]

    def fleet(self) -> dict:
        return self._get_json("/v1/fleet")

    def recover(self) -> list[str]:
        return json.loads(self._request("POST", "/v1/recover", {}))["requeued"]

    # -- polling helpers ------------------------------------------------
    def wait(self, job_id: str, *, timeout: float = 60.0, poll: float = 0.05) -> dict:
        """Poll until the job is terminal; returns its final metadata."""
        deadline = time.monotonic() + timeout
        while True:
            meta = self.job(job_id)
            if meta["status"] in ("done", "failed"):
                return meta
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {meta['status']} after {timeout}s"
                )
            time.sleep(poll)

    def wait_result(self, job_id: str, *, timeout: float = 60.0) -> dict:
        """Wait for completion, then return the result document."""
        self.wait(job_id, timeout=timeout)
        return self.result(job_id)
