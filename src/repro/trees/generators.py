"""Binary-tree workload generators.

The paper's theorems quantify over *all* binary trees, so the experiments
must exercise structurally diverse families.  Every generator takes the
target node count ``n`` and a seed and returns a :class:`BinaryTree` with
exactly ``n`` nodes; :data:`FAMILIES` is the registry the benchmark harness
sweeps over.

Families
--------
``complete``       perfectly balanced (the easy case every prior work handles)
``path``           a single descending chain (maximally unbalanced)
``caterpillar``    a spine with a leaf hanging off every spine node
``random``         uniform random attachment: grow by picking a random node
                   with spare child capacity
``random_split``   recursive random partition of the remaining node budget
``remy``           uniform *full* binary tree via Remy's algorithm, padded to
                   the exact size when ``n`` is even
``skewed``         random split with a strong left bias (deep and thin)
``zigzag``         alternating left/right chain with occasional leaves
``broom``          a long handle ending in a complete-binary-tree brush
"""

from __future__ import annotations

import random
from collections.abc import Callable, Mapping

from .._util import as_rng, check_positive
from .binary_tree import BinaryTree

__all__ = [
    "FAMILIES",
    "broom_tree",
    "fibonacci_tree",
    "caterpillar_tree",
    "complete_binary_tree",
    "make_tree",
    "path_tree",
    "random_binary_tree",
    "random_split_tree",
    "remy_tree",
    "skewed_tree",
    "zigzag_tree",
]


def complete_binary_tree(n: int, seed: int | random.Random | None = None) -> BinaryTree:
    """The first ``n`` nodes of the infinite complete binary tree (heap order).

    For ``n = 2**k - 1`` this is the perfectly balanced tree of height
    ``k - 1``; other sizes truncate the last level from the left.
    """
    check_positive("n", n)
    parent = [-1] + [(v - 1) // 2 for v in range(1, n)]
    return BinaryTree(parent)


def path_tree(n: int, seed: int | random.Random | None = None) -> BinaryTree:
    """A descending chain of ``n`` nodes — the degenerate binary tree."""
    check_positive("n", n)
    return BinaryTree([-1] + list(range(n - 1)))


def caterpillar_tree(n: int, seed: int | random.Random | None = None) -> BinaryTree:
    """A spine with a single leaf attached to every interior spine node.

    Caterpillars are the classic adversary for balanced-host embeddings:
    they are "path-like" globally but have linear leaf mass.
    """
    check_positive("n", n)
    parent = [-1]
    spine = 0
    while len(parent) < n:
        # attach a leaf to the current spine node, then extend the spine
        if len(parent) < n:
            parent.append(spine)
            leaf_or_spine = len(parent) - 1
        if len(parent) < n:
            parent.append(spine)
            spine = len(parent) - 1
        else:
            spine = leaf_or_spine
    return BinaryTree(parent)


def random_binary_tree(n: int, seed: int | random.Random | None = None) -> BinaryTree:
    """Grow a tree by uniform random attachment.

    Repeatedly pick, uniformly, a node that still has spare child capacity
    and give it a new child.  Not the uniform distribution over tree shapes
    (use :func:`remy_tree` for that) but spans shapes from near-path to
    near-balanced and is cheap at any size.
    """
    check_positive("n", n)
    rng = as_rng(seed)
    parent = [-1]
    open_nodes = [0, 0]  # node 0 has two open child slots
    for v in range(1, n):
        i = rng.randrange(len(open_nodes))
        p = open_nodes[i]
        # remove the used slot in O(1)
        open_nodes[i] = open_nodes[-1]
        open_nodes.pop()
        parent.append(p)
        open_nodes.extend((v, v))
    return BinaryTree(parent)


def random_split_tree(n: int, seed: int | random.Random | None = None) -> BinaryTree:
    """Recursively split the node budget uniformly between two children.

    Each node draws ``left ~ Uniform{0..rest}`` and recurses; produces
    trees whose subtree-size profile is much more varied than uniform
    attachment.
    """
    check_positive("n", n)
    rng = as_rng(seed)
    parent = [0] * n
    parent[0] = -1
    next_label = 1

    # Explicit stack of (parent_label, budget) jobs to avoid recursion limits.
    stack: list[tuple[int, int]] = []

    def spawn(par: int, budget: int) -> None:
        nonlocal next_label
        if budget <= 0:
            return
        label = next_label
        next_label += 1
        parent[label] = par
        stack.append((label, budget - 1))

    root_budget = n - 1
    left = rng.randint(0, root_budget)
    spawn(0, left)
    spawn(0, root_budget - left)
    while stack:
        node, budget = stack.pop()
        if budget == 0:
            continue
        left = rng.randint(0, budget)
        spawn(node, left)
        spawn(node, budget - left)
    return BinaryTree(parent)


def remy_tree(n: int, seed: int | random.Random | None = None) -> BinaryTree:
    """Uniformly random binary tree shape via Remy's algorithm.

    Remy's algorithm generates a uniformly random *full* binary tree with
    ``k`` internal nodes (``2k + 1`` nodes total).  For even ``n`` we
    generate the largest full tree that fits and pad with a single chain
    node (documented deviation; the padded node is a leaf extension).
    """
    check_positive("n", n)
    rng = as_rng(seed)
    if n == 1:
        return BinaryTree([-1])
    k = (n - 1) // 2  # internal nodes of the full tree
    full_nodes = 2 * k + 1
    # Remy: maintain a growing full binary tree; at each step pick a random
    # node, replace it by a new internal node one of whose children is the
    # old subtree and the other a new leaf (side chosen at random).
    parent = [-1]
    children: list[list[int]] = [[]]
    for _ in range(k):
        target = rng.randrange(len(parent))
        side = rng.randrange(2)
        internal = len(parent)
        parent.append(parent[target])
        children.append([])
        leaf = len(parent)
        parent.append(internal)
        children.append([])
        p = parent[internal]
        if p != -1:
            children[p][children[p].index(target)] = internal
        parent[target] = internal
        if side == 0:
            children[internal] = [target, leaf]
        else:
            children[internal] = [leaf, target]
    tree = BinaryTree(parent)
    if full_nodes < n:
        tree = tree.padded_to(n)
    return tree


def skewed_tree(n: int, seed: int | random.Random | None = None, bias: float = 0.85) -> BinaryTree:
    """Random split with a strong bias: most of each budget goes left.

    Produces deep, thin trees with occasional heavy side branches — a good
    stress case for the load-balancing half of the embedding.
    """
    check_positive("n", n)
    rng = as_rng(seed)
    parent = [0] * n
    parent[0] = -1
    next_label = 1
    stack: list[tuple[int, int]] = [(0, n - 1)]
    while stack:
        node, budget = stack.pop()
        if budget == 0:
            continue
        heavy = int(round(budget * bias))
        jitter = rng.randint(-budget // 8 - 1, budget // 8 + 1)
        left = min(budget, max(0, heavy + jitter))
        for sub_budget in (left, budget - left):
            if sub_budget > 0:
                label = next_label
                next_label += 1
                parent[label] = node
                stack.append((label, sub_budget - 1))
    return BinaryTree(parent)


def zigzag_tree(n: int, seed: int | random.Random | None = None) -> BinaryTree:
    """A chain that alternates sides, sprouting a leaf at every other step."""
    check_positive("n", n)
    parent = [-1]
    spine = 0
    step = 0
    while len(parent) < n:
        if step % 2 == 1 and len(parent) < n:
            parent.append(spine)  # leaf off the spine
        if len(parent) < n:
            parent.append(spine)
            spine = len(parent) - 1
        step += 1
    return BinaryTree(parent)


def broom_tree(n: int, seed: int | random.Random | None = None) -> BinaryTree:
    """Half the nodes form a handle (path), the rest a complete-tree brush."""
    check_positive("n", n)
    handle = max(1, n // 2)
    parent = [-1] + list(range(handle - 1))
    # brush: complete binary tree hanging below the end of the handle
    base = handle - 1
    for v in range(handle, n):
        off = v - handle  # position within the brush, heap order
        parent.append(base if off == 0 else handle + (off - 1) // 2)
    return BinaryTree(parent)


def fibonacci_tree(n: int, seed: int | random.Random | None = None) -> BinaryTree:
    """The AVL worst case: F(h) has subtrees F(h-1) and F(h-2).

    The largest Fibonacci tree with at most ``n`` nodes is built, then
    padded with a chain to exactly ``n`` — maximally height-unbalanced
    among *height-balanced* trees, a shape none of the other families hit.
    """
    check_positive("n", n)

    sizes = [1, 2]  # nodes of F(1), F(2)
    while sizes[-1] < n:
        sizes.append(sizes[-1] + sizes[-2] + 1)
    h = len(sizes)
    while h > 1 and sizes[h - 1] > n:
        h -= 1

    parent: list[int] = []

    def build(height: int, par: int) -> None:
        idx = len(parent)
        parent.append(par)
        if height >= 2:
            build(height - 1, idx)
        if height >= 3:
            build(height - 2, idx)

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 4 * h + 100))
    try:
        build(h, -1)
    finally:
        sys.setrecursionlimit(old_limit)
    return BinaryTree(parent).padded_to(n)


def make_tree(family: str, n: int, seed: int | random.Random | None = None) -> BinaryTree:
    """Dispatch by family name through :data:`FAMILIES`."""
    try:
        gen = FAMILIES[family]
    except KeyError:
        raise ValueError(f"unknown tree family {family!r}; known: {sorted(FAMILIES)}") from None
    return gen(n, seed)


#: Registry of generators; each maps ``(n, seed) -> BinaryTree`` with exactly
#: ``n`` nodes.  Benchmarks sweep over this table.
FAMILIES: Mapping[str, Callable[..., BinaryTree]] = {
    "complete": complete_binary_tree,
    "path": path_tree,
    "caterpillar": caterpillar_tree,
    "random": random_binary_tree,
    "random_split": random_split_tree,
    "remy": remy_tree,
    "skewed": skewed_tree,
    "zigzag": zigzag_tree,
    "broom": broom_tree,
    "fibonacci": fibonacci_tree,
}
