"""Canonical forms, isomorphism, and exhaustive enumeration of binary trees.

The paper's theorems are universally quantified — *every* binary tree.
Random families sample that space; this module lets the test suite close
the gap exhaustively at small sizes:

* :func:`canonical_form` — an AHU-style canonical encoding of a rooted
  binary tree (children unordered, which matches the embedding problem:
  swapping children changes nothing);
* :func:`are_isomorphic` — shape equality via canonical forms;
* :func:`enumerate_shapes` — one representative per isomorphism class of
  ``n``-node rooted binary trees.  Counts follow the Wedderburn-Etherington
  numbers (1, 1, 1, 2, 3, 6, 11, 23, 46, 98, ...), so full sweeps are
  feasible up to n ~ 16 — enough to run the Theorem 1 machinery against
  *all* trees of a given size (tests/test_exhaustive.py).
"""

from __future__ import annotations

from functools import lru_cache

from .binary_tree import BinaryTree

__all__ = [
    "canonical_form",
    "are_isomorphic",
    "count_shapes",
    "enumerate_shapes",
]


def canonical_form(tree: BinaryTree) -> str:
    """AHU canonical string of the rooted tree, children unordered.

    Two trees have equal canonical forms iff they are isomorphic as rooted
    trees with unordered children.
    """
    # iterative post-order to survive path-shaped trees
    form: dict[int, str] = {}
    for v in reversed(tree.preorder()):
        kids = sorted(form[c] for c in tree.children(v))
        form[v] = "(" + "".join(kids) + ")"
    return form[tree.root]


def are_isomorphic(a: BinaryTree, b: BinaryTree) -> bool:
    """Rooted, unordered-children isomorphism."""
    return a.n == b.n and canonical_form(a) == canonical_form(b)


@lru_cache(maxsize=None)
def count_shapes(n: int) -> int:
    """Wedderburn-Etherington count of n-node rooted binary tree shapes."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if n <= 1:
        return n  # zero shapes on 0 nodes, one on 1
    rest = n - 1  # nodes below the root
    # root with one child subtree of size `rest`, or two subtrees {i, rest-i}
    total = count_shapes(rest)  # single child
    for i in range(1, rest // 2 + 1):
        j = rest - i
        if i < j:
            total += count_shapes(i) * count_shapes(j)
        else:  # i == j: unordered pair with repetition
            c = count_shapes(i)
            total += c * (c + 1) // 2
    return total


def enumerate_shapes(n: int) -> list[BinaryTree]:
    """One representative per isomorphism class of n-node binary trees.

    Ordered deterministically; ``len(result) == count_shapes(n)``.  Sizes
    beyond ~16 get large quickly (WE numbers grow ~2.48^n) — callers should
    stay small.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")

    @lru_cache(maxsize=None)
    def shapes(m: int) -> tuple[tuple, ...]:
        """Shapes as nested child-tuples: () is a leaf."""
        if m == 0:
            return ()
        if m == 1:
            return ((),)
        out: list[tuple] = []
        rest = m - 1
        for sub in shapes(rest):  # single child
            out.append((sub,))
        for i in range(1, rest // 2 + 1):
            j = rest - i
            left_shapes = shapes(i)
            right_shapes = shapes(j)
            if i < j:
                for ls in left_shapes:
                    for rs in right_shapes:
                        out.append((ls, rs))
            else:
                for a in range(len(left_shapes)):
                    for b in range(a, len(left_shapes)):
                        out.append((left_shapes[a], left_shapes[b]))
        return tuple(out)

    result = []
    for shape in shapes(n):
        parent: list[int] = []

        def build(node: tuple, par: int) -> None:
            idx = len(parent)
            parent.append(par)
            for child in node:
                build(child, idx)

        build(shape, -1)
        result.append(BinaryTree(parent))
    return result
