"""Guest structures: rooted binary trees, generators, traversals, forests."""

from .binary_tree import BinaryTree, theorem1_guest_size, theorem3_guest_size
from .canonical import are_isomorphic, canonical_form, count_shapes, enumerate_shapes
from .forest import ForestComponent, components_after_removal, is_collinear
from .generators import (
    FAMILIES,
    broom_tree,
    caterpillar_tree,
    complete_binary_tree,
    fibonacci_tree,
    make_tree,
    path_tree,
    random_binary_tree,
    random_split_tree,
    remy_tree,
    skewed_tree,
    zigzag_tree,
)
from .traversal import bfs_order, euler_tour, heavy_path, lca, path_between, postorder

__all__ = [
    "BinaryTree",
    "theorem1_guest_size",
    "theorem3_guest_size",
    "are_isomorphic",
    "canonical_form",
    "count_shapes",
    "enumerate_shapes",
    "ForestComponent",
    "components_after_removal",
    "is_collinear",
    "FAMILIES",
    "make_tree",
    "complete_binary_tree",
    "fibonacci_tree",
    "path_tree",
    "caterpillar_tree",
    "random_binary_tree",
    "random_split_tree",
    "remy_tree",
    "skewed_tree",
    "zigzag_tree",
    "broom_tree",
    "bfs_order",
    "euler_tour",
    "heavy_path",
    "lca",
    "path_between",
    "postorder",
]
