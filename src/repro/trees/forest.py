"""Induced forests and component/attachment bookkeeping.

The Theorem 1 construction constantly reasons about the forest ``F(S, T)``
induced by removing a node set from a tree: which components appear, and by
how many edges each component is attached to the removed set.  *Collinearity*
(paper, section 2) is the property that every component is attached by at
most two edges; it is what keeps every unplaced piece an "interval" with at
most two designated boundary nodes.
"""

from __future__ import annotations

from collections.abc import Collection, Iterable
from dataclasses import dataclass

from .binary_tree import BinaryTree

__all__ = ["ForestComponent", "components_after_removal", "is_collinear"]


@dataclass(frozen=True)
class ForestComponent:
    """One connected component of ``T - removed`` plus its boundary edges.

    ``attachments`` lists the tree edges ``(inside, outside)`` leaving the
    component, with ``inside`` in the component and ``outside`` in the
    removed set.  The ``inside`` endpoints are the component's *designated
    nodes* in the paper's terminology.
    """

    nodes: frozenset[int]
    attachments: tuple[tuple[int, int], ...]

    @property
    def size(self) -> int:
        """Number of nodes in the component."""
        return len(self.nodes)

    @property
    def designated(self) -> tuple[int, ...]:
        """Inside endpoints of the boundary edges, deduplicated, ordered."""
        seen: dict[int, None] = {}
        for inside, _ in self.attachments:
            seen.setdefault(inside)
        return tuple(seen)

    @property
    def n_attachment_edges(self) -> int:
        """Number of edges from the component to the removed set."""
        return len(self.attachments)


def components_after_removal(
    tree: BinaryTree,
    removed: Collection[int],
    within: Iterable[int] | None = None,
) -> list[ForestComponent]:
    """Components of ``tree`` restricted to ``within`` minus ``removed``.

    ``within`` (default: all nodes) lets callers analyse a *piece* of the
    original tree — the embedding algorithm works on pieces throughout.
    Attachment edges are reported only towards removed nodes **inside**
    ``within``; edges leaving ``within`` entirely are outside the piece's
    universe and ignored.
    """
    removed_set = set(removed)
    universe = set(within) if within is not None else set(tree.nodes())
    if not removed_set <= universe:
        raise ValueError("removed nodes must lie inside the analysed universe")
    alive = universe - removed_set
    seen: set[int] = set()
    out: list[ForestComponent] = []
    for start in sorted(alive):
        if start in seen:
            continue
        comp: list[int] = []
        boundary: list[tuple[int, int]] = []
        stack = [start]
        seen.add(start)
        while stack:
            v = stack.pop()
            comp.append(v)
            for u in tree.neighbors(v):
                if u not in universe:
                    continue
                if u in removed_set:
                    boundary.append((v, u))
                elif u not in seen:
                    seen.add(u)
                    stack.append(u)
        boundary.sort()
        out.append(ForestComponent(frozenset(comp), tuple(boundary)))
    return out


def is_collinear(
    tree: BinaryTree,
    node_set: Collection[int],
    within: Iterable[int] | None = None,
) -> bool:
    """Paper's collinearity: every component of the complement attaches to
    ``node_set`` by at most two edges."""
    comps = components_after_removal(tree, node_set, within=within)
    return all(c.n_attachment_edges <= 2 for c in comps)
