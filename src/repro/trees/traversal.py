"""Traversal and decomposition helpers for :class:`BinaryTree`.

These are the pieces the separator lemmas and the embedding algorithm lean
on: subtree sizes restricted to a node subset, heavy-child walks, paths and
lowest common ancestors.  Everything is iterative — the degenerate `path`
family would blow the recursion limit otherwise.
"""

from __future__ import annotations

from .binary_tree import BinaryTree

__all__ = [
    "bfs_order",
    "euler_tour",
    "heavy_path",
    "lca",
    "path_between",
    "postorder",
]


def postorder(tree: BinaryTree) -> list[int]:
    """Children-before-parents listing (reverse of preorder is one)."""
    return list(reversed(tree.preorder()))


def bfs_order(tree: BinaryTree) -> list[int]:
    """Level order from the root."""
    from collections import deque

    order: list[int] = []
    queue = deque([tree.root])
    while queue:
        v = queue.popleft()
        order.append(v)
        queue.extend(tree.children(v))
    return order


def euler_tour(tree: BinaryTree) -> list[int]:
    """Euler tour: every edge traversed twice, nodes repeated on return.

    Useful to the simulator workloads (tree-walking programs).
    """
    tour: list[int] = []
    # (node, child_iterator_position) explicit stack
    stack: list[tuple[int, int]] = [(tree.root, 0)]
    while stack:
        v, i = stack.pop()
        tour.append(v)
        kids = tree.children(v)
        if i < len(kids):
            stack.append((v, i + 1))
            stack.append((kids[i], 0))
    return tour


def path_between(tree: BinaryTree, u: int, v: int) -> list[int]:
    """The unique tree path from ``u`` to ``v``, endpoints included."""
    depth = tree.depths()
    left: list[int] = []
    right: list[int] = []
    while depth[u] > depth[v]:
        left.append(u)
        u = tree.parent(u)  # type: ignore[assignment]
    while depth[v] > depth[u]:
        right.append(v)
        v = tree.parent(v)  # type: ignore[assignment]
    while u != v:
        left.append(u)
        right.append(v)
        u = tree.parent(u)  # type: ignore[assignment]
        v = tree.parent(v)  # type: ignore[assignment]
    return left + [u] + right[::-1]


def lca(tree: BinaryTree, u: int, v: int) -> int:
    """Lowest common ancestor of ``u`` and ``v`` (plain pointer chasing)."""
    depth = tree.depths()
    while depth[u] > depth[v]:
        u = tree.parent(u)  # type: ignore[assignment]
    while depth[v] > depth[u]:
        v = tree.parent(v)  # type: ignore[assignment]
    while u != v:
        u = tree.parent(u)  # type: ignore[assignment]
        v = tree.parent(v)  # type: ignore[assignment]
    return u


def heavy_path(tree: BinaryTree, start: int | None = None) -> list[int]:
    """Walk from ``start`` (default: root) always into the largest subtree.

    This is exactly the walk of the paper's ``find1`` procedure, exposed for
    inspection and testing.
    """
    sizes = tree.subtree_sizes()
    v = tree.root if start is None else start
    path = [v]
    while tree.children(v):
        v = max(tree.children(v), key=lambda c: sizes[c])
        path.append(v)
    return path
