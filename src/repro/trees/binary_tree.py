"""Rooted binary trees — the guest structures of the paper.

A *binary tree* here is what the paper quantifies over: a rooted tree in
which every node has at most two children (hence maximum degree three, and
the root has degree at most two).  Nodes are labelled ``0 .. n-1``; the
canonical storage is a parent array (``-1`` marks the root) plus derived
children lists.

The class is deliberately immutable-ish: algorithms that need to dissect
trees (the separator lemmas, the embedding) work on index arrays and node
sets rather than mutating the tree.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import networkx as nx

__all__ = ["BinaryTree", "theorem1_guest_size", "theorem3_guest_size"]


def theorem1_guest_size(r: int) -> int:
    """Guest size for Theorem 1 / 2: ``16 * (2**(r+1) - 1)`` (X(r), load 16)."""
    if r < 0:
        raise ValueError(f"height must be non-negative, got {r}")
    return 16 * ((1 << (r + 1)) - 1)


def theorem3_guest_size(r: int) -> int:
    """Guest size for Theorem 3: ``16 * (2**r - 1)`` (hypercube Q_r, load 16)."""
    if r < 0:
        raise ValueError(f"dimension must be non-negative, got {r}")
    return 16 * ((1 << r) - 1)


class BinaryTree:
    """An ``n``-node rooted tree with at most two children per node."""

    __slots__ = ("_parent", "_children", "_root", "_n")

    def __init__(self, parent: Sequence[int]):
        """Build from a parent array; ``parent[v] == -1`` marks the root.

        Raises :class:`ValueError` unless the array describes a single
        connected rooted tree in which every node has at most two children.
        """
        n = len(parent)
        if n == 0:
            raise ValueError("a binary tree must have at least one node")
        self._n = n
        self._parent = tuple(int(p) for p in parent)
        roots = [v for v, p in enumerate(self._parent) if p == -1]
        if len(roots) != 1:
            raise ValueError(f"expected exactly one root, found {len(roots)}")
        self._root = roots[0]
        children: list[list[int]] = [[] for _ in range(n)]
        for v, p in enumerate(self._parent):
            if p == -1:
                continue
            if not 0 <= p < n:
                raise ValueError(f"parent[{v}] = {p} out of range")
            children[p].append(v)
        for v, kids in enumerate(children):
            if len(kids) > 2:
                raise ValueError(f"node {v} has {len(kids)} children; at most 2 allowed")
        self._children = tuple(tuple(kids) for kids in children)
        self._check_connected()

    def _check_connected(self) -> None:
        """Every node must reach the root along parent pointers, cycle-free."""
        state = [0] * self._n  # 0 unvisited, 1 on stack, 2 done
        for start in range(self._n):
            if state[start]:
                continue
            path = []
            v = start
            while v != -1 and state[v] == 0:
                state[v] = 1
                path.append(v)
                v = self._parent[v]
            if v != -1 and state[v] == 1:
                raise ValueError("parent array contains a cycle")
            for u in path:
                state[u] = 2

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, n: int, edges: Iterable[tuple[int, int]], root: int = 0) -> BinaryTree:
        """Build from an undirected edge list, orienting away from ``root``."""
        adj: list[list[int]] = [[] for _ in range(n)]
        count = 0
        for u, v in edges:
            adj[u].append(v)
            adj[v].append(u)
            count += 1
        if count != n - 1:
            raise ValueError(f"a tree on {n} nodes needs {n - 1} edges, got {count}")
        parent = [-2] * n
        parent[root] = -1
        stack = [root]
        while stack:
            u = stack.pop()
            for v in adj[u]:
                if parent[v] == -2:
                    parent[v] = u
                    stack.append(v)
        if any(p == -2 for p in parent):
            raise ValueError("edge list is not connected")
        return cls(parent)

    @classmethod
    def from_nested(cls, spec) -> BinaryTree:
        """Build from nested tuples: ``(left, right)`` with ``None`` for absent.

        Example: ``BinaryTree.from_nested(((None, None), None))`` is a
        three-node path rooted at the top.  Leaves may be written as ``()``.
        """
        parent: list[int] = []

        def build(node, par: int) -> int:
            idx = len(parent)
            parent.append(par)
            if node is None:
                raise ValueError("None marks an absent child, not a subtree")
            for child in node:
                if child is not None:
                    build(child, idx)
            return idx

        if spec is None:
            raise ValueError("tree specification must not be None")
        build(spec, -1)
        return cls(parent)

    @classmethod
    def from_networkx(cls, graph: nx.Graph, root: int = 0) -> BinaryTree:
        """Build from a networkx tree whose nodes are ``0 .. n-1``."""
        return cls.from_edges(graph.number_of_nodes(), graph.edges(), root=root)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def root(self) -> int:
        """The root node."""
        return self._root

    def parent(self, v: int) -> int | None:
        """Parent of ``v``, or ``None`` for the root."""
        p = self._parent[v]
        return None if p == -1 else p

    @property
    def parent_array(self) -> tuple[int, ...]:
        """The raw parent array (``-1`` for the root)."""
        return self._parent

    def children(self, v: int) -> tuple[int, ...]:
        """The children of ``v`` (0, 1 or 2 of them)."""
        return self._children[v]

    def neighbors(self, v: int) -> Iterator[int]:
        """Parent (if any) followed by children."""
        p = self._parent[v]
        if p != -1:
            yield p
        yield from self._children[v]

    def degree(self, v: int) -> int:
        """Number of tree neighbours of ``v`` (at most 3)."""
        return len(self._children[v]) + (0 if self._parent[v] == -1 else 1)

    def is_leaf(self, v: int) -> bool:
        """True when ``v`` has no children."""
        return not self._children[v]

    def nodes(self) -> range:
        """All node labels."""
        return range(self._n)

    def edges(self) -> Iterator[tuple[int, int]]:
        """All (parent, child) edges."""
        for v, p in enumerate(self._parent):
            if p != -1:
                yield (p, v)

    # ------------------------------------------------------------------
    # Global structure
    # ------------------------------------------------------------------
    def subtree_sizes(self) -> list[int]:
        """``sizes[v]`` = number of nodes in the subtree rooted at ``v``."""
        sizes = [1] * self._n
        for v in reversed(self.preorder()):
            p = self._parent[v]
            if p != -1:
                sizes[p] += sizes[v]
        return sizes

    def preorder(self) -> list[int]:
        """Preorder (root first) listing of the nodes; iterative."""
        order: list[int] = []
        stack = [self._root]
        while stack:
            v = stack.pop()
            order.append(v)
            # push right first so the left child is visited first
            for c in reversed(self._children[v]):
                stack.append(c)
        return order

    def depths(self) -> list[int]:
        """``depths[v]`` = distance from the root to ``v``."""
        depth = [0] * self._n
        for v in self.preorder():
            p = self._parent[v]
            if p != -1:
                depth[v] = depth[p] + 1
        return depth

    def height(self) -> int:
        """Longest root-to-leaf distance."""
        return max(self.depths())

    def is_complete(self) -> bool:
        """True when the tree is a complete binary tree (all levels full)."""
        n = self._n + 1
        if n & (n - 1):
            return False
        depth = self.depths()
        h = max(depth)
        from collections import Counter

        per_level = Counter(depth)
        return all(per_level[d] == (1 << d) for d in range(h + 1))

    def tree_distance(self, u: int, v: int) -> int:
        """Hop distance between ``u`` and ``v`` inside the tree."""
        depth = self.depths()
        d = 0
        while depth[u] > depth[v]:
            u = self._parent[u]
            d += 1
        while depth[v] > depth[u]:
            v = self._parent[v]
            d += 1
        while u != v:
            u = self._parent[u]
            v = self._parent[v]
            d += 2
        return d

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def rerooted(self, new_root: int) -> BinaryTree:
        """The same undirected tree rooted at ``new_root``.

        Only valid when ``new_root`` has degree at most 2 (otherwise the
        result would have a node with three children).
        """
        if self.degree(new_root) > 2:
            raise ValueError(f"cannot reroot at {new_root}: degree {self.degree(new_root)} > 2")
        return BinaryTree.from_edges(self._n, self.edges(), root=new_root)

    def padded_to(self, target_n: int) -> BinaryTree:
        """Extend with a chain of filler nodes so the result has ``target_n`` nodes.

        The filler is a path attached below the first node found with spare
        child capacity (leaves are preferred so the original shape is kept
        intact).  This implements the DESIGN.md substitution rule for guest
        sizes that are not of the exact Theorem 1 form.
        """
        if target_n < self._n:
            raise ValueError(f"cannot shrink a tree: {self._n} -> {target_n}")
        if target_n == self._n:
            return self
        attach = None
        for v in range(self._n):
            if self.is_leaf(v):
                attach = v
                break
        if attach is None:  # no leaf would be impossible, but stay defensive
            attach = next(v for v in range(self._n) if len(self._children[v]) < 2)
        parent = list(self._parent)
        prev = attach
        for _ in range(target_n - self._n):
            parent.append(prev)
            prev = len(parent) - 1
        return BinaryTree(parent)

    def to_networkx(self) -> nx.Graph:
        """Materialise as an undirected :class:`networkx.Graph`."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self._n))
        graph.add_edges_from(self.edges())
        return graph

    # ------------------------------------------------------------------
    # Dunders
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BinaryTree) and self._parent == other._parent

    def __hash__(self) -> int:
        return hash(self._parent)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BinaryTree(n={self._n}, root={self._root})"
