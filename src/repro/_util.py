"""Small shared helpers used across the :mod:`repro` package.

Nothing here is specific to the paper; these are the kind of utilities a
production library keeps in one private module so the public modules stay
focused on the domain.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence
from typing import TypeVar

T = TypeVar("T")

__all__ = [
    "as_rng",
    "check_nonnegative",
    "check_positive",
    "is_power_of_two",
    "node_from_json",
    "node_to_json",
    "pairwise_disjoint",
]


def node_to_json(value):
    """A topology node label in JSON-serialisable form.

    Labels are ints (hypercube) or (nested) tuples of ints (X-tree
    ``(level, index)``, grid coordinates, CCC ``(corner, pos)``); JSON has
    no tuples, so tuples become lists, recursively.  Inverse of
    :func:`node_from_json`.
    """
    if isinstance(value, tuple):
        return [node_to_json(v) for v in value]
    return value


def node_from_json(value):
    """JSON form of a node label back to the canonical hashable form.

    Lists round-trip back into tuples, recursively (see
    :func:`node_to_json`).
    """
    if isinstance(value, list):
        return tuple(node_from_json(v) for v in value)
    return value


def as_rng(seed: int | random.Random | None) -> random.Random:
    """Normalise ``seed`` into a :class:`random.Random` instance.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` (fresh generator with a fixed default seed so that library
    behaviour is reproducible unless the caller opts out).
    """
    if isinstance(seed, random.Random):
        return seed
    if seed is None:
        return random.Random(0xA11CE)
    return random.Random(seed)


def check_nonnegative(name: str, value: int) -> int:
    """Validate that ``value`` is a non-negative integer and return it."""
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ValueError(f"{name} must be a non-negative integer, got {value!r}")
    return value


def check_positive(name: str, value: int) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return value


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def pairwise_disjoint(sets: Iterable[Sequence[T] | set[T] | frozenset[T]]) -> bool:
    """Return True when no element appears in more than one of ``sets``."""
    seen: set[T] = set()
    for group in sets:
        for item in group:
            if item in seen:
                return False
            seen.add(item)
    return True
