"""Search over policy trees: grid / random / cross-entropy, reproducibly.

The tuner closes the loop the DSL opens: a *template* is a parametric
policy tree (a small vector of numeric knobs and a ``build`` function
producing the tree), and :func:`tune` searches the knob space against
scenario-library workloads — each candidate document is applied to every
scenario (replacing its ``policy`` or ``router`` by domain), run to
completion, and scored by total makespan.  Scenarios are deterministic
(the service's core contract), so the objective is exact: no repetitions,
no noise floor, and a fixed ``(template, scenarios, method, budget,
seed)`` tuple reproduces the whole sweep byte-for-byte — the tuning log
is part of a winning document's provenance, and CI re-derives it.

Three search methods, all driven by one seeded ``random.Random``:

* ``grid``   — the cartesian product of each knob's ``grid`` values, in
  deterministic order, truncated at ``budget``;
* ``random`` — ``budget`` uniform draws from each knob's ``[lo, hi]``;
* ``cem``    — a simple cross-entropy loop: sample a population from a
  per-knob Gaussian (clipped to ``[lo, hi]``), refit mean/std to the
  elite quartile, repeat until the budget is spent.  The std is floored
  at 5% of the knob range so the search never collapses prematurely.

Scheduling-domain candidates run on the vectorised engine (their runs
keep the deterministic router); routing-domain candidates force the
classic engine, as every adaptive router does — the tuner inherits
whichever the scenario's ``engine: "auto"`` dispatch picks.
"""

from __future__ import annotations

import itertools
import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from .dsl import POLICY_VERSION, PolicyDoc

__all__ = [
    "Param",
    "Template",
    "TEMPLATES",
    "TuneResult",
    "apply_policy",
    "evaluate_doc",
    "tune",
]


@dataclass(frozen=True)
class Param:
    """One numeric knob of a template: its range and its grid points."""

    name: str
    lo: float
    hi: float
    grid: tuple = ()
    integer: bool = False

    def clip(self, x: float) -> float:
        x = min(max(x, self.lo), self.hi)
        # round for stable JSON round-trips of the tuning log
        return int(round(x)) if self.integer else round(x, 6)


@dataclass(frozen=True)
class Template:
    """A parametric policy tree: knobs + a tree builder."""

    name: str
    domain: str
    params: tuple
    build: Callable[[dict], dict]
    description: str = ""

    def make_doc(self, params: dict, provenance: dict | None = None) -> PolicyDoc:
        return PolicyDoc.from_obj({
            "version": POLICY_VERSION,
            "name": self.name,
            "domain": self.domain,
            "description": self.description,
            **({"provenance": provenance} if provenance is not None else {}),
            "tree": self.build(params),
        })


def _route_hotspot_tree(p: dict) -> dict:
    """Deterministic while cold, adaptive spreading once measurably hot.

    The §7 terminal-bound regression is adaptive routing committing flows
    on empty estimates; this template gates the adaptive regime behind a
    live-congestion threshold on the minimal links.
    """
    return {
        "if": {"signal": "max_link_ewma", "op": "ge", "value": p["hot"]},
        "then": {
            "action": "score",
            "weights": {
                "cycle_picks": p["w_picks"],
                "link_ewma": p["w_link"],
                "queue_ewma": p["w_queue"],
            },
            "tiebreak": "seeded",
        },
        "else": {"action": "score", "weights": {}, "tiebreak": "index"},
    }


def _sched_fair_tree(p: dict) -> dict:
    """Fair share with a tunable backlog/admission-order blend."""
    return {
        "action": "score",
        "weights": {
            "virtual_time": 1.0,
            "backlog": p["w_backlog"],
            "order": p["w_order"],
        },
    }


#: built-in parametric trees the ``xtree-embed tune`` CLI can search
TEMPLATES = {
    "route-hotspot": Template(
        name="route-hotspot",
        domain="routing",
        params=(
            Param("hot", 0.25, 4.0, grid=(0.5, 1.0, 2.0)),
            Param("w_picks", 0.0, 2.0, grid=(0.5, 1.0)),
            Param("w_link", 0.0, 2.0, grid=(0.5, 1.0)),
            Param("w_queue", 0.0, 1.0, grid=(0.0, 0.5)),
        ),
        build=_route_hotspot_tree,
        description=(
            "deterministic below a live-congestion threshold on the minimal "
            "links, adaptive spreading above it"
        ),
    ),
    "sched-fair": Template(
        name="sched-fair",
        domain="scheduling",
        params=(
            Param("w_backlog", -0.05, 0.05, grid=(-0.01, 0.0, 0.01)),
            Param("w_order", 0.0, 2.0, grid=(0.0, 1.0)),
        ),
        build=_sched_fair_tree,
        description="fair share with a tunable backlog/admission-order blend",
    ),
}


def apply_policy(scenario, doc: PolicyDoc | dict):
    """``scenario`` with ``doc`` installed in its domain's slot."""
    from dataclasses import replace

    if isinstance(doc, dict):
        doc = PolicyDoc.from_obj(doc)
    if doc.domain == "scheduling":
        return replace(scenario, policy=doc.as_dict())
    return replace(scenario, router=doc.as_dict())


def evaluate_doc(doc: PolicyDoc | dict, scenarios) -> dict:
    """Run every scenario under ``doc``; exact cycle counts, no noise.

    Returns ``{"total": int, "per_scenario": {name: makespan}}``.
    """
    from ..service.scenario import run_scenario

    per = {}
    for sc in scenarios:
        per[sc.name] = run_scenario(apply_policy(sc, doc)).makespan
    return {"total": sum(per.values()), "per_scenario": per}


def _baselines(domain: str, scenarios) -> dict:
    """The built-in policies' exact scores on the same workloads."""
    from dataclasses import replace

    from ..service.scenario import run_scenario

    if domain == "routing":
        variants = {
            "deterministic": lambda sc: replace(sc, router="deterministic"),
            "adaptive": lambda sc: replace(sc, router="adaptive"),
        }
    else:
        variants = {
            "fifo": lambda sc: replace(sc, policy="fifo"),
            "fair": lambda sc: replace(sc, policy="fair"),
        }
    out = {}
    for name, mutate in variants.items():
        per = {sc.name: run_scenario(mutate(sc)).makespan for sc in scenarios}
        out[name] = {"total": sum(per.values()), "per_scenario": per}
    return out


@dataclass
class TuneResult:
    """Winner of one sweep plus the full reproducible log."""

    doc: PolicyDoc
    params: dict
    objective: int
    log: dict

    def write_log(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.log, indent=2) + "\n")


def _grid_candidates(template: Template, budget: int):
    axes = []
    for p in template.params:
        axes.append([p.clip(v) for v in (p.grid or (p.lo, p.hi))])
    names = [p.name for p in template.params]
    combos = itertools.product(*axes)
    return [dict(zip(names, c)) for c in itertools.islice(combos, budget)]


def _random_candidates(template: Template, budget: int, rng: random.Random):
    out = []
    for _ in range(budget):
        out.append({
            p.name: p.clip(rng.uniform(p.lo, p.hi)) for p in template.params
        })
    return out


def tune(
    template: Template | str,
    scenarios,
    *,
    method: str = "random",
    budget: int = 16,
    seed: int = 0,
    log_path: str | Path | None = None,
) -> TuneResult:
    """Search ``template``'s knob space against ``scenarios``.

    Every candidate is logged in evaluation order with its exact
    objective; the best (ties to the earliest) becomes the winning
    document, stamped with provenance sufficient to re-run the sweep.
    """
    if isinstance(template, str):
        try:
            template = TEMPLATES[template]
        except KeyError:
            raise ValueError(
                f"unknown template {template!r}: expected one of {sorted(TEMPLATES)}"
            ) from None
    if method not in ("grid", "random", "cem"):
        raise ValueError(
            f"unknown tune method {method!r}: expected grid, random, or cem"
        )
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    scenarios = list(scenarios)
    if not scenarios:
        raise ValueError("tune needs at least one scenario")

    rng = random.Random(seed)
    cache: dict[tuple, dict] = {}
    entries: list[dict] = []

    def score(params: dict) -> int:
        key = tuple(params[p.name] for p in template.params)
        if key not in cache:
            cache[key] = evaluate_doc(template.make_doc(params), scenarios)
        result = cache[key]
        entries.append({
            "params": dict(params),
            "objective": result["total"],
            "per_scenario": dict(result["per_scenario"]),
        })
        return result["total"]

    if method == "grid":
        for cand in _grid_candidates(template, budget):
            score(cand)
    elif method == "random":
        for cand in _random_candidates(template, budget, rng):
            score(cand)
    else:  # cem
        params = template.params
        mean = {p.name: (p.lo + p.hi) / 2 for p in params}
        std = {p.name: (p.hi - p.lo) / 2 for p in params}
        pop = min(budget, max(4, budget // 4))
        spent = 0
        while spent < budget:
            batch = []
            for _ in range(min(pop, budget - spent)):
                batch.append({
                    p.name: p.clip(rng.gauss(mean[p.name], std[p.name]))
                    for p in params
                })
            scored = sorted(
                ((score(c), i, c) for i, c in enumerate(batch)),
                key=lambda t: (t[0], t[1]),
            )
            spent += len(batch)
            elite = [c for _s, _i, c in scored[: max(1, len(scored) // 4)]]
            for p in params:
                vals = [c[p.name] for c in elite]
                m = sum(vals) / len(vals)
                var = sum((v - m) ** 2 for v in vals) / len(vals)
                mean[p.name] = m
                std[p.name] = max(var**0.5, (p.hi - p.lo) * 0.05)

    best = min(enumerate(entries), key=lambda t: (t[1]["objective"], t[0]))[1]
    baselines = _baselines(template.domain, scenarios)
    log = {
        "version": 1,
        "template": template.name,
        "domain": template.domain,
        "method": method,
        "seed": seed,
        "budget": budget,
        "scenarios": [sc.name for sc in scenarios],
        "baselines": baselines,
        "candidates": entries,
        "best": dict(best),
    }
    provenance = {
        "template": template.name,
        "method": method,
        "seed": seed,
        "budget": budget,
        "params": dict(best["params"]),
        "objective": best["objective"],
        "baselines": {name: b["total"] for name, b in baselines.items()},
        "scenarios": [sc.name for sc in scenarios],
    }
    doc = template.make_doc(best["params"], provenance)
    result = TuneResult(
        doc=doc, params=dict(best["params"]), objective=best["objective"], log=log
    )
    if log_path is not None:
        result.write_log(log_path)
    return result
