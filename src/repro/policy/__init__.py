"""Declarative decision-tree policies over engine feedback, plus tuning.

``repro.policy`` turns the runtime's pluggable-but-code-only scheduling
and routing policies into *data*:

* :mod:`repro.policy.dsl` — the versioned, strictly validated JSON
  policy-tree format (:class:`PolicyDoc`, :func:`evaluate`);
* :mod:`repro.policy.sched` — :class:`TreeSchedulerPolicy`, a document
  driving ``Runtime`` superstep picks (registered as ``POLICIES["tree"]``);
* :mod:`repro.policy.route` — :class:`TreeRouter`, a document driving
  next-hop scoring/detours (registered as ``ROUTERS["tree"]``);
* :mod:`repro.policy.tune` — grid / random / cross-entropy search over
  parametric templates against scenario workloads, with a reproducible
  seeded tuning log (:func:`tune`, :data:`TEMPLATES`).

Committed winning documents live in ``policies/`` next to the scenario
library, and are validated in CI like scenarios are.
"""

from .dsl import (
    ACTION_SIGNALS,
    CONDITION_SIGNALS,
    DOMAINS,
    OPS,
    POLICY_VERSION,
    TIEBREAKS,
    PolicyDoc,
    evaluate,
)
from .route import TreeRouter
from .sched import TreeSchedulerPolicy
from .tune import TEMPLATES, Param, Template, TuneResult, apply_policy, evaluate_doc, tune

__all__ = [
    "POLICY_VERSION",
    "DOMAINS",
    "OPS",
    "TIEBREAKS",
    "CONDITION_SIGNALS",
    "ACTION_SIGNALS",
    "PolicyDoc",
    "evaluate",
    "TreeRouter",
    "TreeSchedulerPolicy",
    "Param",
    "Template",
    "TEMPLATES",
    "TuneResult",
    "apply_policy",
    "evaluate_doc",
    "tune",
]
