"""The declarative policy-tree DSL: versioned, validated, JSON round-trip.

A *policy document* is a JSON decision tree over the feedback signals the
engine and runtime already expose — queue occupancy, link-utilisation
EWMAs, backlog, priority, consumed cycles, fault state.  Evaluating the
tree against a *signal snapshot* walks ``if``/``then``/``else`` nodes to
a leaf **action** that parameterises the decision (how to score the
candidate next hops, or the candidate jobs).  Every scheduling/routing
improvement thereby becomes a data change: a new document next to
``scenarios/``, not new code.

Schema (``version`` is required and checked — the wire format is a
compatibility promise, like scenarios and checkpoints)::

    {
      "version": 1,
      "name": "hotspot-route",
      "domain": "routing",                  // or "scheduling"
      "description": "optional free text",
      "provenance": {"...": "how this document was produced (optional)"},
      "tree": {
        "if":   {"signal": "max_link_ewma", "op": "ge", "value": 1.5},
        "then": {"action": "score",
                 "weights": {"cycle_picks": 1.0, "link_ewma": 1.0},
                 "tiebreak": "seeded"},
        "else": {"action": "score", "weights": {}, "tiebreak": "index"}
      }
    }

**Conditions** read *decision-level* signals (one snapshot per decision,
:data:`CONDITION_SIGNALS` per domain) and compose::

    {"signal": <name>, "op": "lt|le|gt|ge|eq|ne", "value": <number>}
    {"all": [cond, ...]}    {"any": [cond, ...]}    {"not": cond}
    {"const": true|false}

**Actions** (``"action": "score"`` is the only verb) score each
*candidate* — a next hop, or an active job — as ``bias + sum(weights[s] *
signal(candidate, s))`` over :data:`ACTION_SIGNALS`; the lowest score
wins and ``tiebreak`` breaks exact ties (``"order"`` — admission order —
for scheduling; ``"seeded"`` — the adaptive router's seeded permutation —
or ``"index"`` — canonical node index, the deterministic router's rule —
for routing).  Routing actions may also carry ``detour_margin`` to
re-parameterise the detour test per decision.  An empty ``weights`` makes
every candidate tie, so ``{"weights": {}, "tiebreak": "index"}`` *is* the
deterministic baseline — a tree can interpolate between the deterministic
and adaptive regimes and a tuner (:mod:`repro.policy.tune`) can search
the interpolation.

Validation is strict like :class:`repro.service.scenario.Scenario`:
unknown keys, unknown signals, unknown ops, or malformed nodes raise
:class:`ValueError` with the JSON path and the allowed vocabulary — a
typo'd knob must not silently run with defaults.  :func:`evaluate` is a
pure function of ``(tree, signals)``: no clock, no randomness, no state,
which is what makes documents checkpoint-safe and tuning honest.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "POLICY_VERSION",
    "DOMAINS",
    "OPS",
    "TIEBREAKS",
    "CONDITION_SIGNALS",
    "ACTION_SIGNALS",
    "PolicyDoc",
    "evaluate",
]

#: wire-format version of the policy document; bumped on breaking change
POLICY_VERSION = 1

DOMAINS = ("scheduling", "routing")

#: comparison operators a leaf condition may use
OPS = ("lt", "le", "gt", "ge", "eq", "ne")

#: allowed ``tiebreak`` values per domain (first entry is the default)
TIEBREAKS = {
    "scheduling": ("order",),
    "routing": ("seeded", "index"),
}

#: decision-level signals conditions may read, per domain.  Scheduling
#: trees see one snapshot per pick (aggregates over the active jobs plus
#: runtime state); routing trees see one snapshot per (node, dst) routing
#: decision (aggregates over the minimal candidates plus message state).
CONDITION_SIGNALS = {
    "scheduling": frozenset({
        "n_active",        # number of schedulable jobs
        "cycle",           # global runtime clock
        "faulted",         # 1.0 while dead nodes / failed links exist
        "total_backlog",   # sum of active jobs' backlogs
        "max_backlog",
        "min_backlog",
        "max_priority",
    }),
    "routing": frozenset({
        "dist",            # remaining hops to the destination
        "n_minimal",       # candidate counts after classification
        "n_sideways",
        "n_backwards",
        "max_link_ewma",   # aggregates over the minimal candidates
        "min_link_ewma",
        "max_queue_ewma",
        "min_queue_ewma",
        "total_picks",     # picks already made from this node this cycle
        "budget",          # message's remaining detour budget
        "faulted",         # 1.0 while the network has failed links
    }),
}

#: candidate-level signals action weights may combine, per domain
ACTION_SIGNALS = {
    "scheduling": frozenset({
        "virtual_time",    # fair-share accumulator (monotone)
        "consumed_cycles",
        "backlog",
        "priority",
        "remaining_steps",
        "next_step",
        "total_messages",
        "n_delivered",
        "n_failed",
        "n_repairs",
        "order",           # admission order among the active jobs
    }),
    "routing": frozenset({
        "cycle_picks",     # picks already routed over (node, candidate)
        "link_ewma",       # learned utilisation of (node, candidate)
        "queue_ewma",      # learned occupancy of the candidate's queue
        "is_last_pick",    # 1.0 if the flow chose this link last time
    }),
}

_DOC_KEYS = {"version", "name", "domain", "description", "provenance", "tree"}
_IF_KEYS = {"if", "then", "else"}
_LEAF_COND_KEYS = {"signal", "op", "value"}
_ACTION_KEYS = {
    "scheduling": {"action", "weights", "bias", "tiebreak"},
    "routing": {"action", "weights", "bias", "tiebreak", "detour_margin"},
}


def _err(path: str, message: str) -> "ValueError":
    return ValueError(f"policy tree: {path}: {message}")


def _check_number(x: Any, path: str, what: str) -> None:
    if isinstance(x, bool) or not isinstance(x, (int, float)):
        raise _err(path, f"{what} must be a number, got {type(x).__name__}")


def _check_condition(cond: Any, domain: str, path: str) -> None:
    if not isinstance(cond, dict):
        raise _err(path, f"condition must be an object, got {type(cond).__name__}")
    forms = [k for k in ("all", "any", "not", "const", "signal") if k in cond]
    if len(forms) != 1:
        raise _err(
            path,
            "condition must be exactly one of "
            '{"signal"/"op"/"value"}, {"all": [...]}, {"any": [...]}, '
            '{"not": ...}, {"const": bool}; got keys ' + str(sorted(cond)),
        )
    form = forms[0]
    if form in ("all", "any"):
        extra = set(cond) - {form}
        if extra:
            raise _err(path, f'unknown keys {sorted(extra)} next to "{form}"')
        branch = cond[form]
        if not isinstance(branch, list) or not branch:
            raise _err(path, f'"{form}" needs a non-empty list of conditions')
        for i, sub in enumerate(branch):
            _check_condition(sub, domain, f"{path}.{form}[{i}]")
    elif form == "not":
        extra = set(cond) - {"not"}
        if extra:
            raise _err(path, f'unknown keys {sorted(extra)} next to "not"')
        _check_condition(cond["not"], domain, f"{path}.not")
    elif form == "const":
        extra = set(cond) - {"const"}
        if extra:
            raise _err(path, f'unknown keys {sorted(extra)} next to "const"')
        if not isinstance(cond["const"], bool):
            raise _err(path, f'"const" must be true or false, got {cond["const"]!r}')
    else:
        extra = set(cond) - _LEAF_COND_KEYS
        if extra:
            raise _err(
                path,
                f"unknown condition keys {sorted(extra)}: "
                f"a leaf condition has exactly {sorted(_LEAF_COND_KEYS)}",
            )
        missing = _LEAF_COND_KEYS - set(cond)
        if missing:
            raise _err(path, f"condition is missing {sorted(missing)}")
        allowed = CONDITION_SIGNALS[domain]
        if cond["signal"] not in allowed:
            raise _err(
                path,
                f"unknown {domain} condition signal {cond['signal']!r}: "
                f"expected one of {sorted(allowed)}",
            )
        if cond["op"] not in OPS:
            raise _err(
                path, f"unknown op {cond['op']!r}: expected one of {list(OPS)}"
            )
        _check_number(cond["value"], path, '"value"')


def _check_action(action: Any, domain: str, path: str) -> None:
    if not isinstance(action, dict):
        raise _err(path, f"action must be an object, got {type(action).__name__}")
    allowed_keys = _ACTION_KEYS[domain]
    extra = set(action) - allowed_keys
    if extra:
        raise _err(
            path,
            f"unknown action keys {sorted(extra)}: a {domain} action "
            f"allows {sorted(allowed_keys)}",
        )
    if action.get("action") != "score":
        raise _err(
            path,
            f'actions must declare "action": "score" (the only verb), '
            f"got {action.get('action')!r}",
        )
    weights = action.get("weights", {})
    if not isinstance(weights, dict):
        raise _err(path, f'"weights" must be an object, got {type(weights).__name__}')
    allowed = ACTION_SIGNALS[domain]
    for sig, w in weights.items():
        if sig not in allowed:
            raise _err(
                path,
                f"unknown {domain} weight signal {sig!r}: "
                f"expected one of {sorted(allowed)}",
            )
        _check_number(w, path, f"weights[{sig!r}]")
    if "bias" in action:
        _check_number(action["bias"], path, '"bias"')
    tiebreak = action.get("tiebreak", TIEBREAKS[domain][0])
    if tiebreak not in TIEBREAKS[domain]:
        raise _err(
            path,
            f"unknown {domain} tiebreak {tiebreak!r}: "
            f"expected one of {list(TIEBREAKS[domain])}",
        )
    if "detour_margin" in action:
        _check_number(action["detour_margin"], path, '"detour_margin"')


def _check_node(node: Any, domain: str, path: str) -> None:
    if not isinstance(node, dict):
        raise _err(path, f"node must be an object, got {type(node).__name__}")
    if "if" in node:
        extra = set(node) - _IF_KEYS
        if extra:
            raise _err(
                path,
                f"unknown decision keys {sorted(extra)}: a decision node "
                f"has exactly {sorted(_IF_KEYS)}",
            )
        missing = _IF_KEYS - set(node)
        if missing:
            raise _err(path, f"decision node is missing {sorted(missing)}")
        _check_condition(node["if"], domain, f"{path}.if")
        _check_node(node["then"], domain, f"{path}.then")
        _check_node(node["else"], domain, f"{path}.else")
    elif "action" in node:
        _check_action(node, domain, path)
    else:
        raise _err(
            path,
            'node must be a decision ({"if"/"then"/"else"}) or an action '
            '({"action": "score", ...}); got keys ' + str(sorted(node)),
        )


@dataclass(frozen=True)
class PolicyDoc:
    """One validated policy document (see the module docstring).

    ``tree`` is kept as the parsed JSON structure it arrived as (validated
    on construction, deep-copied on ``as_dict``); treat it as immutable.
    """

    name: str
    domain: str
    tree: Any
    description: str = ""
    provenance: dict | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("policy document needs a non-empty name")
        if self.domain not in DOMAINS:
            raise ValueError(
                f"unknown policy domain {self.domain!r}: "
                f"expected one of {list(DOMAINS)}"
            )
        if self.provenance is not None and not isinstance(self.provenance, dict):
            raise ValueError(
                f'"provenance" must be an object, got {type(self.provenance).__name__}'
            )
        _check_node(self.tree, self.domain, "tree")

    # -- wire format ----------------------------------------------------
    @classmethod
    def from_obj(cls, obj: Any) -> "PolicyDoc":
        """Parse and validate one policy document (parsed JSON)."""
        if not isinstance(obj, dict):
            raise ValueError(
                f"policy document must be a JSON object, got {type(obj).__name__}"
            )
        version = obj.get("version")
        if version != POLICY_VERSION:
            raise ValueError(
                f"unsupported policy version {version!r} "
                f"(this build reads {POLICY_VERSION})"
            )
        unknown = set(obj) - _DOC_KEYS
        if unknown:
            raise ValueError(
                f"unknown policy document fields: {sorted(unknown)} "
                f"(allowed: {sorted(_DOC_KEYS)})"
            )
        for key in ("name", "domain", "tree"):
            if key not in obj:
                raise ValueError(f"policy document is missing required field {key!r}")
        return cls(
            name=obj["name"],
            domain=obj["domain"],
            tree=obj["tree"],
            description=obj.get("description", ""),
            provenance=obj.get("provenance"),
        )

    @classmethod
    def from_json(cls, path: str | Path) -> "PolicyDoc":
        return cls.from_obj(json.loads(Path(path).read_text()))

    def as_dict(self) -> dict:
        """JSON-safe round-trip form (``from_obj(as_dict())`` is identity)."""
        d: dict = {
            "version": POLICY_VERSION,
            "name": self.name,
            "domain": self.domain,
            "tree": copy.deepcopy(self.tree),
        }
        if self.description:
            d["description"] = self.description
        if self.provenance is not None:
            d["provenance"] = copy.deepcopy(self.provenance)
        return d

    def to_json(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.as_dict(), indent=2) + "\n")


def _truth(cond: Mapping, signals: Mapping) -> bool:
    if "const" in cond:
        return cond["const"]
    if "all" in cond:
        return all(_truth(c, signals) for c in cond["all"])
    if "any" in cond:
        return any(_truth(c, signals) for c in cond["any"])
    if "not" in cond:
        return not _truth(cond["not"], signals)
    x = float(signals.get(cond["signal"], 0.0))
    v = cond["value"]
    op = cond["op"]
    if op == "lt":
        return x < v
    if op == "le":
        return x <= v
    if op == "gt":
        return x > v
    if op == "ge":
        return x >= v
    if op == "eq":
        return x == v
    return x != v


def evaluate(tree: Mapping, signals: Mapping) -> Mapping:
    """Walk ``tree`` against ``signals`` down to its leaf action.

    A **pure deterministic function**: the result depends on nothing but
    the arguments (no clock, no randomness, no mutation of either input),
    and missing signals read as ``0.0``.  The returned mapping is the
    tree's own leaf node — callers must not mutate it.
    """
    node = tree
    while "if" in node:
        node = node["then"] if _truth(node["if"], signals) else node["else"]
    return node
