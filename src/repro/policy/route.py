"""Tree-policy routing: a :class:`PolicyDoc` driving next-hop scoring.

:class:`TreeRouter` subclasses :class:`~repro.simulate.routing.AdaptiveRouter`
and re-parameterises its score hook per routing decision: when the engine
asks for a next hop, the candidates are classified as usual, one
decision-level snapshot is taken (distances, candidate counts, EWMA
aggregates, detour budget, fault state), the policy tree evaluates to a
leaf action, and that action decides how this particular decision scores
its candidates — which feedback signals to weigh, how to break ties, and
what detour margin applies.  All the learned feedback (link/queue EWMAs,
per-cycle picks, sticky last-picks) is inherited from the adaptive
router, as is its checkpoint format, so tree routers ride the existing
bit-identical resume machinery.

The two built-in regimes are expressible as leaf actions:

* deterministic — ``{"action": "score", "weights": {}, "tiebreak":
  "index"}``: every candidate ties at zero and the canonical node index
  decides, which is exactly :class:`ShortestPathRouter`'s rule (parity is
  gated in ``tests/test_policy.py``);
* adaptive — ``{"action": "score", "weights": {"cycle_picks": 1.0,
  "link_ewma": 1.0, "queue_ewma": 0.5}, "tiebreak": "seeded"}``: the
  adaptive router's default scoring.

A tree that *conditions* on live congestion to switch between those
regimes is how the §7 terminal-bound hot-spot regression is closed: stay
deterministic while signals are cold (adaptive routing's losses there
come from committing flows on empty estimates), spread only when the
minimal links are measurably hot (see ``policies/`` and
``benchmarks/bench_policy.py``).
"""

from __future__ import annotations

from ..simulate.routing import ROUTERS, AdaptiveRouter, Node
from .dsl import PolicyDoc, evaluate

__all__ = ["TreeRouter"]


class TreeRouter(AdaptiveRouter):
    """Route by evaluating a declarative policy tree per decision.

    Constructor knobs mirror :class:`AdaptiveRouter` (EWMA smoothing,
    detour budget/margin, tie-break seed) minus ``hysteresis``: sticky
    damping is a *policy* here — a tree opts in by weighting
    ``is_last_pick`` negatively — so the implicit mechanism stays off and
    everything the router does is readable from the document.
    """

    def __init__(
        self,
        doc: PolicyDoc | dict,
        *,
        ewma_alpha: float = 0.5,
        queue_weight: float = 0.5,
        detour_budget: int = 0,
        detour_margin: float = 2.0,
        seed: int = 0,
    ):
        super().__init__(
            ewma_alpha=ewma_alpha,
            queue_weight=queue_weight,
            detour_budget=detour_budget,
            detour_margin=detour_margin,
            hysteresis=0.0,
            seed=seed,
        )
        if isinstance(doc, dict):
            doc = PolicyDoc.from_obj(doc)
        if doc.domain != "routing":
            raise ValueError(
                f"policy document {doc.name!r} has domain {doc.domain!r}; "
                f'a router needs domain "routing"'
            )
        self.doc = doc
        #: the base margin the document's actions may override per decision
        self._base_margin = detour_margin
        # current decision's action parameters (set by _begin_decision;
        # next_hop always calls it before any scoring happens)
        self._weights: dict = {}
        self._bias = 0.0
        self._tb_index = False
        self._cur_dst: Node | None = None

    # -- per-decision re-parameterisation -------------------------------
    def _decision_signals(
        self,
        node: Node,
        dst: Node,
        minimal: list[Node],
        sideways: list[Node],
        backwards: list[Node],
        msg_id: int | None,
    ) -> dict:
        le, qe, cp = self._link_ewma, self._queue_ewma, self._cycle_picks
        link_vals = [le.get((node, v), 0.0) for v in minimal]
        queue_vals = [qe.get(v, 0.0) for v in minimal]
        return {
            "dist": float(self.network._dist_table(dst)[node]),
            "n_minimal": float(len(minimal)),
            "n_sideways": float(len(sideways)),
            "n_backwards": float(len(backwards)),
            "max_link_ewma": max(link_vals),
            "min_link_ewma": min(link_vals),
            "max_queue_ewma": max(queue_vals),
            "min_queue_ewma": min(queue_vals),
            "total_picks": float(sum(cp[(node, v)] for v in minimal)),
            "budget": float(
                self._budget.get(msg_id, self.detour_budget)
                if msg_id is not None
                else 0
            ),
            "faulted": 1.0 if self.network.failed else 0.0,
        }

    def _begin_decision(self, node, dst, minimal, sideways, backwards, msg_id):
        action = evaluate(
            self.doc.tree,
            self._decision_signals(node, dst, minimal, sideways, backwards, msg_id),
        )
        self._cur_dst = dst
        self._weights = action.get("weights", {})
        self._bias = action.get("bias", 0.0)
        self._tb_index = action.get("tiebreak", "seeded") == "index"
        self.detour_margin = action.get("detour_margin", self._base_margin)

    # -- scoring under the current action -------------------------------
    def _score(self, node: Node, v: Node) -> float:
        total = self._bias
        for sig, w in self._weights.items():
            if sig == "cycle_picks":
                x = float(self._cycle_picks[(node, v)])
            elif sig == "link_ewma":
                x = self._link_ewma.get((node, v), 0.0)
            elif sig == "queue_ewma":
                x = self._queue_ewma.get(v, 0.0)
            else:  # is_last_pick — validation allows nothing else
                x = 1.0 if self._last_pick.get((node, self._cur_dst)) == v else 0.0
            total += w * x
        return total

    def _tiebreak_key(self, v: Node) -> int:
        if self._tb_index:
            return self.network.topology.index(v)
        return self._tiebreak[v]

    # -- checkpointing ---------------------------------------------------
    def spec(self) -> dict:
        return {
            "name": "tree",
            "doc": self.doc.as_dict(),
            "params": {
                "ewma_alpha": self.ewma_alpha,
                "queue_weight": self.queue_weight,
                "detour_budget": self.detour_budget,
                # the *base* margin: detour_margin itself is scratch state
                # the last decision's action may have overridden
                "detour_margin": self._base_margin,
                "seed": self.seed,
            },
            "state": self.state(),
        }


ROUTERS["tree"] = TreeRouter
