"""Tree-policy scheduling: a :class:`PolicyDoc` driving ``Runtime`` picks.

:class:`TreeSchedulerPolicy` interprets a ``domain == "scheduling"``
policy document at every scheduling point: one decision-level snapshot is
taken over the active jobs (plus the runtime's clock and fault state, via
:meth:`bind_runtime`), the tree evaluates to a leaf action, and the
action's weights score each active job — lowest score runs, ties break
towards admission order.  The policy itself is stateless: everything it
reads lives on the jobs and the runtime, both of which checkpoint, so a
restored runtime picks bit-identically (gated in ``tests/test_policy.py``).

The built-ins are expressible as one-action trees:

* fair share  — ``{"action": "score", "weights": {"virtual_time": 1.0}}``
* FIFO        — ``{"action": "score", "weights": {}}`` (all tie, admission
  order wins)

which is what makes the DSL a superset worth tuning over rather than a
third hand-written policy.
"""

from __future__ import annotations

from ..runtime.jobs import Job
from ..runtime.policies import POLICIES, SchedulerPolicy
from .dsl import PolicyDoc, evaluate

__all__ = ["TreeSchedulerPolicy"]


class TreeSchedulerPolicy(SchedulerPolicy):
    """Schedule supersteps by evaluating a declarative policy tree."""

    def __init__(self, doc: PolicyDoc | dict):
        if isinstance(doc, dict):
            doc = PolicyDoc.from_obj(doc)
        if doc.domain != "scheduling":
            raise ValueError(
                f"policy document {doc.name!r} has domain {doc.domain!r}; "
                f'a scheduling policy needs domain "scheduling"'
            )
        self.doc = doc
        self.runtime = None

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"tree:{self.doc.name}"

    def bind_runtime(self, runtime) -> "TreeSchedulerPolicy":
        self.runtime = runtime
        return self

    # -- signal snapshots ----------------------------------------------
    def _decision_signals(self, active: list[Job]) -> dict:
        """One condition snapshot per pick (see ``CONDITION_SIGNALS``)."""
        backlogs = [j.backlog for j in active]
        rt = self.runtime
        faulted = rt is not None and bool(rt.dead_nodes or rt.network.failed)
        return {
            "n_active": float(len(active)),
            "cycle": float(rt.cycle) if rt is not None else 0.0,
            "faulted": 1.0 if faulted else 0.0,
            "total_backlog": float(sum(backlogs)),
            "max_backlog": float(max(backlogs)),
            "min_backlog": float(min(backlogs)),
            "max_priority": float(max(j.spec.priority for j in active)),
        }

    @staticmethod
    def _job_signal(job: Job, sig: str, order: int) -> float:
        if sig == "order":
            return float(order)
        if sig == "virtual_time":
            return job.virtual_time
        if sig == "backlog":
            return float(job.backlog)
        if sig == "priority":
            return float(job.spec.priority)
        if sig == "n_delivered":
            return float(len(job.delivered))
        if sig == "n_failed":
            return float(len(job.failed))
        # consumed_cycles, remaining_steps, next_step, total_messages,
        # n_repairs — all plain counters on the job
        return float(getattr(job, sig))

    # -- the pick -------------------------------------------------------
    def pick(self, active: list[Job]) -> Job:
        action = evaluate(self.doc.tree, self._decision_signals(active))
        weights = action.get("weights", {})
        bias = action.get("bias", 0.0)
        best = None
        best_key: tuple[float, int] | None = None
        for order, job in enumerate(active):
            score = bias
            for sig, w in weights.items():
                score += w * self._job_signal(job, sig, order)
            key = (score, order)
            if best_key is None or key < best_key:
                best, best_key = job, key
        return best


POLICIES["tree"] = TreeSchedulerPolicy
