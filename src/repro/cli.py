"""Command-line interface: ``xtree-embed``.

Subcommands
-----------
``embed``   run the Theorem 1 construction on a generated tree and print the
            quality report (optionally the full placement).
``verify``  run every paper-claim verifier at a chosen size and print the
            paper-vs-measured table.
``simulate`` run a tree program on the X-tree through the embedding and
            report cycles and slowdown; ``--trace PATH`` exports a JSONL
            event/metrics trace, ``--metrics`` prints per-cycle metrics,
            timing spans and counters (see ``repro.obs``); ``--router``
            picks the next-hop policy (``deterministic`` smallest-index
            shortest path, or congestion-aware ``adaptive`` — see
            ``repro.simulate.routing``); ``--faults schedule.json`` injects
            link/node failures while messages are in flight and prints a
            degraded-mode fault report (exit 1 if messages were lost),
            ``--ttl N`` bounds each message's cycles in flight.
``runtime`` multiplex several guest programs on one host network
            (``repro.runtime``): a JSON job config names the host and the
            job specs; ``--faults`` plays a fault schedule on the global
            clock (node deaths repair online and migrate stranded
            messages); ``--checkpoint PATH`` resumes from the file when it
            exists and rewrites it as the run progresses — kill the
            process at any point and re-run the same command to continue
            bit-identically.
``tune``    search a parametric policy template (``repro.policy.tune``)
            against scenario workloads and write the winning
            decision-tree document plus a reproducible tuning log.

``simulate``, ``runtime``, and ``service run`` all take ``--policy FILE``
pointing at a ``repro.policy`` decision-tree document (e.g. one written
by ``tune``); its ``domain`` decides whether it replaces the router
(``routing``) or the scheduler (``scheduling``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .analysis.tables import format_claim_reports, markdown_table
from .core.verification import (
    verify_figure1,
    verify_figure2,
    verify_inorder,
    verify_lemma3,
    verify_theorem1,
    verify_theorem2,
    verify_theorem3,
    verify_theorem4,
)
from .core.xtree_embed import theorem1_embedding
from .networks.xtree import addr_to_string
from .separators import SEPARATORS as SEPARATOR_NAMES
from .simulate import ENGINES, PROGRAMS, ROUTERS, simulate_on_guest, simulate_on_host
from .trees.binary_tree import theorem1_guest_size
from .trees.generators import FAMILIES, make_tree

__all__ = ["main"]


def _add_tree_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--family", choices=sorted(FAMILIES), default="random", help="guest tree family")
    p.add_argument("--height", type=int, default=4, help="X-tree height r (guest gets 16*(2^(r+1)-1) nodes)")
    p.add_argument("--seed", type=int, default=0, help="generator seed")


def _make_tree(args) -> tuple[int, object]:
    n = theorem1_guest_size(args.height)
    return n, make_tree(args.family, n, seed=args.seed)


def _cmd_embed(args) -> int:
    n, tree = _make_tree(args)
    result = theorem1_embedding(
        tree, validate=args.validate, separator=args.separator
    )
    rep = result.embedding.report()
    print(f"guest: {args.family} tree, n={n}; host: X({args.height}); "
          f"separator {args.separator}")
    print(rep)
    extras = {
        k: v for k, v in result.stats.as_dict().items() if v and k != "max_pieces_per_leaf"
    }
    if extras:
        print(f"fallback stats: {extras}")
    if args.show_placement:
        for v in sorted(result.embedding.phi):
            addr = result.embedding.phi[v]
            print(f"  {v} -> {addr} ({addr_to_string(addr) or 'eps'})")
    return 0 if rep.dilation <= 3 and rep.load_factor == 16 else 1


def _cmd_verify(args) -> int:
    n, tree = _make_tree(args)
    from .core.verification import verify_corollary_q8, verify_imbalance_estimations

    reports = [
        verify_figure1(args.height),
        verify_figure2(args.height),
        verify_theorem1(tree),
        verify_theorem2(tree),
        verify_lemma3(args.height),
        verify_inorder(args.height),
        verify_imbalance_estimations(tree),
        verify_corollary_q8(make_tree(args.family, max(16, n // 2), seed=args.seed)),
    ]
    from .trees.binary_tree import theorem3_guest_size

    reports.append(verify_theorem3(make_tree(args.family, theorem3_guest_size(args.height), seed=args.seed)))
    if args.height + 5 >= 5:
        reports.append(verify_theorem4(args.height + 5, seeds=(args.seed,)))
    print(format_claim_reports(reports))
    return 0 if all(r.passed for r in reports) else 1


def _load_policy_doc(path):
    """Load + validate one policy document, or print the error and return
    None (callers turn that into exit 1)."""
    from .policy import PolicyDoc

    try:
        return PolicyDoc.from_json(path)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"error: bad policy document {path}: {exc}", file=sys.stderr)
        return None


def _cmd_simulate(args) -> int:
    from .obs import NullRecorder, TraceRecorder

    router = args.router
    router_label = args.router
    if args.policy:
        doc = _load_policy_doc(args.policy)
        if doc is None:
            return 1
        if doc.domain != "routing":
            print(
                f"error: policy document {doc.name!r} has domain "
                f"{doc.domain!r}; `simulate` runs a single program, so only "
                "routing-domain documents apply (use `runtime` for "
                "scheduling policies)",
                file=sys.stderr,
            )
            return 1
        router = doc.as_dict()
        router_label = f"tree:{doc.name}"

    n, tree = _make_tree(args)
    result = theorem1_embedding(tree, separator=args.separator)
    faults = None
    if args.faults:
        from .simulate import FaultSchedule

        try:
            faults = FaultSchedule.from_json(Path(args.faults))
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"error: cannot load fault schedule {args.faults}: {exc}", file=sys.stderr)
            return 1
    fault_mode = faults is not None or args.ttl is not None
    rows = []
    names = [args.program] if args.program else sorted(PROGRAMS)
    observing = bool(args.trace or args.metrics)
    recorder = TraceRecorder() if observing else NullRecorder()
    reports = []
    for name in names:
        prog = PROGRAMS[name](tree)
        guest = simulate_on_guest(prog)
        host = simulate_on_host(
            prog,
            result.embedding,
            link_capacity=args.link_capacity,
            recorder=recorder,
            router=router,
            faults=faults,
            ttl=args.ttl,
            engine=args.engine,
        )
        if fault_mode:
            reports.append((name, host.report))
            host = host.result
        rows.append(
            [
                name,
                prog.n_messages,
                guest.total_cycles,
                host.total_cycles,
                f"{host.total_cycles / max(guest.total_cycles, 1):.2f}",
            ]
        )
    print(
        f"guest: {args.family} tree, n={n}; host: X({args.height}); "
        f"link capacity {args.link_capacity}; router {router_label}; "
        f"engine {args.engine}"
        + (f"; faults {args.faults}" if args.faults else "")
        + (f"; ttl {args.ttl}" if args.ttl is not None else "")
    )
    print(markdown_table(["program", "messages", "guest cycles", "host cycles", "slowdown"], rows))
    if fault_mode:
        for name, report in reports:
            print(f"fault report [{name}]: {report}")
    if args.trace:
        try:
            recorder.to_jsonl(args.trace)
        except OSError as exc:
            print(f"error: cannot write trace to {args.trace}: {exc}", file=sys.stderr)
            return 1
        print(f"wrote trace: {args.trace} ({len(recorder.events)} events, "
              f"{len(recorder.cycles)} cycle samples)")
    if args.metrics:
        from .analysis.trace_report import metrics_report

        print()
        print(metrics_report(recorder))
    if fault_mode and any(not rep.complete for _, rep in reports):
        return 1
    return 0


def _cmd_runtime(args) -> int:
    import json

    from .networks import TOPOLOGIES
    from .obs import NullRecorder, TraceRecorder
    from .runtime import AdmissionError, JobSpec, Runtime
    from .simulate.faults import RepairError

    observing = bool(args.trace or args.metrics)
    recorder = TraceRecorder() if observing else NullRecorder()

    ckpt = Path(args.checkpoint) if args.checkpoint else None
    if ckpt is not None and ckpt.exists():
        # resume: the checkpoint is the complete state; jobs.json only
        # seeded the original run
        try:
            rt = Runtime.restore_json(ckpt, recorder=recorder)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"error: cannot restore checkpoint {ckpt}: {exc}", file=sys.stderr)
            return 1
        print(f"resumed from {ckpt}: cycle {rt.cycle}, "
              f"{len(rt.active_jobs())}/{len(rt.jobs)} jobs still active")
    else:
        try:
            config = json.loads(Path(args.config).read_text())
        except (OSError, ValueError) as exc:
            print(f"error: cannot load job config {args.config}: {exc}", file=sys.stderr)
            return 1
        faults = None
        if args.faults:
            from .simulate import FaultSchedule

            try:
                faults = FaultSchedule.from_json(Path(args.faults))
            except (OSError, ValueError, KeyError, TypeError) as exc:
                print(f"error: cannot load fault schedule {args.faults}: {exc}",
                      file=sys.stderr)
                return 1
        router_spec = config.get("router")
        policy_spec = config.get("policy")
        if args.policy:
            doc = _load_policy_doc(args.policy)
            if doc is None:
                return 1
            # the document's domain says which knob it replaces
            if doc.domain == "routing":
                router_spec = doc.as_dict()
            else:
                policy_spec = doc.as_dict()
        try:
            host_spec = config["host"]
            host = TOPOLOGIES[host_spec["name"]](*host_spec.get("args", []))
            rt = Runtime(
                host,
                router=router_spec,
                faults=faults,
                recorder=recorder,
                policy=policy_spec,
                max_load=config.get("max_load", 16),
                link_capacity=config.get("link_capacity", 1),
                engine=args.engine,
            )
            for spec in config["jobs"]:
                rt.admit(JobSpec.from_obj(spec))
        except (KeyError, TypeError, ValueError, AdmissionError) as exc:
            print(f"error: bad job config {args.config}: {exc}", file=sys.stderr)
            return 1
        print(f"admitted {len(rt.jobs)} jobs on {host.name} "
              f"(policy {rt.policy.name}, max load {rt.max_load})")

    admissions = []
    for entry in args.admit_at or ():
        cycle_s, _, spec_path = entry.partition(",")
        try:
            cycle = int(cycle_s)
            if cycle < 0:
                raise ValueError(f"cycle must be >= 0, got {cycle}")
            spec = JobSpec.from_obj(json.loads(Path(spec_path).read_text()))
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"error: bad --admit-at {entry!r}: {exc}", file=sys.stderr)
            return 1
        admissions.append((cycle, spec))

    from .service.scenario import drive_runtime

    try:
        res = drive_runtime(
            rt,
            batch=args.batch,
            checkpoint_path=ckpt,
            checkpoint_every=args.checkpoint_every,
            admissions=admissions,
        )
    except RepairError as exc:
        print(f"error: online repair failed: {exc}", file=sys.stderr)
        if ckpt is not None:
            rt.checkpoint_json(ckpt)
            print(f"wrote checkpoint: {ckpt}", file=sys.stderr)
        return 1
    if ckpt is not None:
        print(f"wrote checkpoint: {ckpt}")
    print(res)
    if not res.complete:
        # mirror `simulate`'s fault report: name every job that did not
        # finish clean, so the nonzero exit is attributable from logs
        for j in res.jobs:
            if j["status"] == "done" and not j["failed"]:
                continue
            why = j["status"] if j["status"] != "done" else "degraded"
            extra = (
                f", {len(j['failed'])} failed messages" if j["failed"] else ""
            )
            print(f"incomplete job {j['name']!r}: {why}{extra}", file=sys.stderr)
    if args.trace:
        try:
            recorder.to_jsonl(args.trace)
        except OSError as exc:
            print(f"error: cannot write trace to {args.trace}: {exc}", file=sys.stderr)
            return 1
        print(f"wrote trace: {args.trace} ({len(recorder.events)} events, "
              f"{len(recorder.cycles)} cycle samples)")
    if args.metrics:
        from .analysis.trace_report import metrics_report

        print()
        print(metrics_report(recorder))
    # exit contract (service workers and CI depend on it, matching
    # `simulate`): 0 = every job done with every message delivered;
    # 1 = degraded/incomplete (failed messages, exhausted budgets) or a
    # RepairError that exhausted the embedding slack (handled above)
    return 0 if res.complete else 1


def _cmd_tune(args) -> int:
    from .policy import tune
    from .service import Scenario

    try:
        scenarios = [Scenario.from_json(p) for p in args.scenario]
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"error: bad scenario: {exc}", file=sys.stderr)
        return 1
    try:
        result = tune(
            args.template,
            scenarios,
            method=args.method,
            budget=args.budget,
            seed=args.seed,
            log_path=args.log,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    log = result.log
    print(
        f"tuned {args.template!r} ({args.method}, budget {args.budget}, "
        f"seed {args.seed}) over {', '.join(log['scenarios'])}"
    )
    rows = [
        [name, b["total"]] for name, b in sorted(log["baselines"].items())
    ]
    rows.append([f"tree:{result.doc.name} (tuned)", result.objective])
    print(markdown_table(["policy", "total makespan (cycles)"], rows))
    best_baseline = min(b["total"] for b in log["baselines"].values())
    if result.objective < best_baseline:
        print(f"tuned document beats every baseline by "
              f"{best_baseline - result.objective} cycles")
    else:
        print("tuned document does not beat the best baseline "
              "(try a larger --budget)")
    if args.log:
        print(f"wrote tuning log: {args.log}")
    if args.out:
        result.doc.to_json(args.out)
        print(f"wrote policy document: {args.out}")
    return 0


def _cmd_service_serve(args) -> int:
    from .service.api import serve

    serve(args.root, n_shards=args.shards, host=args.host, port=args.port)
    return 0


def _cmd_service_run(args) -> int:
    import json

    from .service import Scenario, run_scenario

    try:
        scenario = Scenario.from_json(args.scenario)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"error: bad scenario {args.scenario}: {exc}", file=sys.stderr)
        return 1
    if args.policy:
        from .policy import apply_policy

        doc = _load_policy_doc(args.policy)
        if doc is None:
            return 1
        scenario = apply_policy(scenario, doc)
    res = run_scenario(scenario, checkpoint_path=args.checkpoint)
    if args.json:
        print(json.dumps(res.as_dict(), indent=2))
    else:
        print(res)
    # same exit contract as `runtime`: 0 complete, 1 degraded/incomplete
    return 0 if res.complete else 1


def _cmd_service_submit(args) -> int:
    import json

    from .service import ServiceClient
    from .service.client import ServiceError

    client = ServiceClient(args.url)
    try:
        doc = json.loads(Path(args.scenario).read_text())
    except (OSError, ValueError) as exc:
        print(f"error: cannot load scenario {args.scenario}: {exc}", file=sys.stderr)
        return 1
    try:
        job_id = client.submit(doc)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(job_id)
    if not args.wait:
        return 0
    meta = client.wait(job_id, timeout=args.timeout)
    result = client.result(job_id)
    print(f"{meta['status']} on shard {meta['shard']} "
          f"(attempts {meta['attempts']})")
    if meta["status"] != "done":
        print(f"error: {meta.get('error')}", file=sys.stderr)
        return 1
    return int(result.get("exit_code", 1))


def _cmd_service_status(args) -> int:
    import json

    from .service import ServiceClient
    from .service.client import ServiceError

    client = ServiceClient(args.url)
    try:
        payload = client.job(args.job_id) if args.job_id else client.fleet()
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(payload, indent=2))
    return 0


def _cmd_service_fetch(args) -> int:
    import json

    from .service import ServiceClient
    from .service.client import ServiceError

    client = ServiceClient(args.url)
    try:
        if args.trace:
            for record in client.trace_lines(args.job_id):
                print(json.dumps(record))
            return 0
        result = client.result(args.job_id)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(result, indent=2))
    return int(result.get("exit_code", 1))


def _cmd_service_loadgen(args) -> int:
    import json

    from .service import Fleet, Scenario, ServiceClient, run_load, scenario_variants

    try:
        base = Scenario.from_json(args.scenario)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"error: bad scenario {args.scenario}: {exc}", file=sys.stderr)
        return 1
    scenarios = scenario_variants(base, args.n)
    if args.url:
        report = run_load(
            ServiceClient(args.url), scenarios,
            concurrency=args.concurrency, timeout=args.timeout,
            verify=not args.no_verify,
        )
    else:
        with Fleet(args.root, n_shards=args.shards) as fleet:
            report = run_load(
                fleet, scenarios,
                concurrency=args.concurrency, timeout=args.timeout,
                verify=not args.no_verify,
            )
    print(json.dumps(report.as_dict(), indent=2))
    return 0 if report.ok else 1


def _cmd_online(args) -> int:
    from .core.online import replay_online

    n, tree = _make_tree(args)
    res = replay_online(tree, args.height, compare_offline=args.compare)
    result = theorem1_embedding(tree)
    rows = [
        ["offline (Theorem 1)", result.embedding.dilation(), "-"],
        [
            "online greedy",
            res.embedding.dilation(),
            res.migration_cost if res.migration_cost is not None else "-",
        ],
    ]
    print(f"guest: {args.family} tree, n={n}, grown node-by-node on X({args.height})")
    print(markdown_table(["strategy", "dilation", "repack migrations"], rows))
    return 0


def _cmd_show(args) -> int:
    from .analysis.render import render_dilation_bar, render_loads, render_xtree
    from .networks.xtree import XTree

    if args.empty:
        print(render_xtree(XTree(args.height)))
        return 0
    n, tree = _make_tree(args)
    result = theorem1_embedding(tree)
    print(render_xtree(XTree(args.height)))
    print()
    print(render_loads(result.embedding))
    print()
    print(render_dilation_bar(result.embedding))
    return 0


def _cmd_export(args) -> int:
    from .core.serialization import save_embedding

    n, tree = _make_tree(args)
    result = theorem1_embedding(tree)
    save_embedding(result.embedding, args.output)
    rep = result.embedding.report()
    print(f"wrote {args.output}: {args.family} tree, n={n}, "
          f"dilation={rep.dilation}, load={rep.load_factor}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="xtree-embed",
        description="Monien (SPAA 1991): simulating binary trees on X-trees.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_embed = sub.add_parser("embed", help="run the Theorem 1 construction")
    _add_tree_args(p_embed)
    p_embed.add_argument("--validate", action="store_true", help="check invariants every round")
    p_embed.add_argument("--show-placement", action="store_true", help="dump the full mapping")
    p_embed.add_argument(
        "--separator", choices=sorted(SEPARATOR_NAMES), default="paper",
        help="tree-piece splitter: 'paper' is Lemma 2 (bit-identical to "
             "the default), 'flow' is the max-flow/min-cut engine "
             "(repro.separators)",
    )
    p_embed.set_defaults(func=_cmd_embed)

    p_verify = sub.add_parser("verify", help="check every paper claim")
    _add_tree_args(p_verify)
    p_verify.set_defaults(func=_cmd_verify)

    p_sim = sub.add_parser("simulate", help="run tree programs through the embedding")
    _add_tree_args(p_sim)
    p_sim.add_argument("--program", choices=sorted(PROGRAMS), help="single program (default: all)")
    p_sim.add_argument("--link-capacity", type=int, default=1, help="messages per link direction per cycle")
    p_sim.add_argument(
        "--router", choices=sorted(ROUTERS), default="deterministic",
        help="next-hop policy: smallest-index shortest path, or congestion-aware adaptive",
    )
    p_sim.add_argument(
        "--engine", choices=list(ENGINES), default="auto",
        help="delivery engine: auto dispatches to the vectorised kernel when its "
             "preconditions hold, classic forces the reference loop, vector "
             "forces the kernel (error when unsupported)",
    )
    p_sim.add_argument("--trace", metavar="PATH", help="record the host simulation and write a JSONL trace")
    p_sim.add_argument("--faults", metavar="PATH",
                       help="JSON fault schedule (see repro.simulate.faults) injected while "
                            "messages are in flight; the run returns a degraded-mode report")
    p_sim.add_argument("--ttl", type=int, default=None,
                       help="per-message cycle budget: messages in flight longer are dropped "
                            "('ttl' in the fault report) instead of waiting forever")
    p_sim.add_argument("--metrics", action="store_true",
                       help="print per-cycle metrics, timing spans and counters")
    p_sim.add_argument("--policy", metavar="FILE",
                       help="routing-domain policy document (repro.policy JSON, "
                            "e.g. written by `tune`); overrides --router")
    p_sim.add_argument(
        "--separator", choices=sorted(SEPARATOR_NAMES), default="paper",
        help="tree-piece splitter for the embedding: 'paper' is Lemma 2 "
             "(bit-identical to the default), 'flow' is the max-flow/"
             "min-cut engine (repro.separators)",
    )
    p_sim.set_defaults(func=_cmd_simulate)

    p_rt = sub.add_parser(
        "runtime",
        help="multiplex several guest programs on one host (repro.runtime)",
    )
    p_rt.add_argument(
        "config",
        help="JSON job config: {host: {name, args}, jobs: [JobSpec...], "
             "policy?, router?, max_load?, link_capacity?}",
    )
    p_rt.add_argument("--faults", metavar="PATH",
                      help="JSON fault schedule played on the runtime's global clock; "
                           "node deaths trigger online repair + message migration")
    p_rt.add_argument("--checkpoint", metavar="PATH",
                      help="checkpoint file: restored (and the job config ignored) if it "
                           "already exists, rewritten during and after the run")
    p_rt.add_argument("--checkpoint-every", type=int, default=10, metavar="N",
                      help="rewrite the checkpoint every N supersteps (default 10)")
    p_rt.add_argument(
        "--engine", choices=list(ENGINES), default="auto",
        help="delivery engine for the shared network (see 'simulate --engine')",
    )
    p_rt.add_argument(
        "--batch", action="store_true",
        help="co-schedule link-disjoint supersteps of different jobs into one "
             "merged delivery per round (fault-free, untraced runs only; "
             "per-job cycle stats are unchanged, the global clock advances "
             "by each round's makespan)",
    )
    p_rt.add_argument("--trace", metavar="PATH",
                      help="record every superstep and write a JSONL trace")
    p_rt.add_argument("--metrics", action="store_true",
                      help="print per-cycle metrics, timing spans and counters")
    p_rt.add_argument("--policy", metavar="FILE",
                      help="policy document (repro.policy JSON): its domain decides "
                           "whether it replaces the config's router (routing) or "
                           "scheduler (scheduling); ignored when resuming from a "
                           "checkpoint, which already carries its policies")
    p_rt.add_argument("--admit-at", action="append", metavar="CYCLE,SPEC.json",
                      help="admit the JobSpec in SPEC.json once the runtime "
                           "clock reaches CYCLE (repeatable; admitted "
                           "immediately if the runtime drains first)")
    p_rt.set_defaults(func=_cmd_runtime)

    p_tune = sub.add_parser(
        "tune",
        help="search a policy template against scenarios (repro.policy.tune)",
    )
    from .policy.tune import TEMPLATES as _TEMPLATES

    p_tune.add_argument("template", choices=sorted(_TEMPLATES),
                        help="parametric policy template to search")
    p_tune.add_argument("--scenario", action="append", required=True,
                        metavar="PATH",
                        help="scenario JSON the objective sums over (repeatable)")
    p_tune.add_argument("--method", choices=("grid", "random", "cem"),
                        default="random", help="search method (default random)")
    p_tune.add_argument("--budget", type=int, default=16,
                        help="candidate evaluations (default 16)")
    p_tune.add_argument("--seed", type=int, default=0,
                        help="search seed; a fixed (template, scenarios, method, "
                             "budget, seed) tuple reproduces the sweep exactly")
    p_tune.add_argument("--out", metavar="FILE",
                        help="write the winning policy document here")
    p_tune.add_argument("--log", metavar="FILE",
                        help="write the full tuning log (every candidate + "
                             "objective, baselines, winner) here")
    p_tune.set_defaults(func=_cmd_tune)

    p_svc = sub.add_parser(
        "service",
        help="simulation-as-a-service: scenario jobs on a worker fleet (repro.service)",
    )
    svc_sub = p_svc.add_subparsers(dest="service_command", required=True)

    p_serve = svc_sub.add_parser("serve", help="run a fleet + REST API in the foreground")
    p_serve.add_argument("--root", default="service-data", help="store root directory")
    p_serve.add_argument("--shards", type=int, default=2, help="worker processes")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8642)
    p_serve.set_defaults(func=_cmd_service_serve)

    p_run = svc_sub.add_parser(
        "run", help="execute one scenario JSON in-process (no fleet) — the reference runner"
    )
    p_run.add_argument("scenario", help="scenario JSON path (see scenarios/)")
    p_run.add_argument("--checkpoint", metavar="PATH",
                       help="resume from PATH if it exists; keep it updated while running")
    p_run.add_argument("--json", action="store_true", help="print the result as JSON")
    p_run.add_argument("--policy", metavar="FILE",
                       help="policy document applied over the scenario by domain "
                            "(router for routing, scheduler for scheduling)")
    p_run.set_defaults(func=_cmd_service_run)

    p_submit = svc_sub.add_parser("submit", help="submit a scenario to a running service")
    p_submit.add_argument("scenario", help="scenario JSON path")
    p_submit.add_argument("--url", default="http://127.0.0.1:8642", help="service base URL")
    p_submit.add_argument("--wait", action="store_true",
                          help="poll until terminal; exit with the job's exit code")
    p_submit.add_argument("--timeout", type=float, default=120.0)
    p_submit.set_defaults(func=_cmd_service_submit)

    p_status = svc_sub.add_parser("status", help="show fleet status or one job's metadata")
    p_status.add_argument("job_id", nargs="?", help="job id (omit for the whole fleet)")
    p_status.add_argument("--url", default="http://127.0.0.1:8642")
    p_status.set_defaults(func=_cmd_service_status)

    p_fetch = svc_sub.add_parser("fetch", help="fetch a job's result (or streamed trace)")
    p_fetch.add_argument("job_id")
    p_fetch.add_argument("--url", default="http://127.0.0.1:8642")
    p_fetch.add_argument("--trace", action="store_true", help="fetch the JSONL trace instead")
    p_fetch.set_defaults(func=_cmd_service_fetch)

    p_load = svc_sub.add_parser(
        "loadgen",
        help="replay N concurrent submissions (verifies results bit-identical "
             "to direct runs unless --no-verify)",
    )
    p_load.add_argument("scenario", help="base scenario JSON (cloned N times)")
    p_load.add_argument("-n", type=int, default=20, dest="n", help="submissions (default 20)")
    p_load.add_argument("--url", help="target a running service over HTTP")
    p_load.add_argument("--root", default="loadgen-data",
                        help="with no --url: spin up a local fleet on this store root")
    p_load.add_argument("--shards", type=int, default=2)
    p_load.add_argument("--concurrency", type=int, default=16)
    p_load.add_argument("--timeout", type=float, default=300.0)
    p_load.add_argument("--no-verify", action="store_true",
                        help="skip the bit-identity check against direct runs")
    p_load.set_defaults(func=_cmd_service_loadgen)

    p_online = sub.add_parser("online", help="grow the tree node-by-node (tree machine)")
    _add_tree_args(p_online)
    p_online.add_argument("--compare", action="store_true", help="also compute repack cost")
    p_online.set_defaults(func=_cmd_online)

    p_show = sub.add_parser("show", help="render the X-tree and an embedding's loads")
    _add_tree_args(p_show)
    p_show.add_argument("--empty", action="store_true", help="draw the bare X-tree only")
    p_show.set_defaults(func=_cmd_show)

    p_export = sub.add_parser("export", help="write the placement to a JSON file")
    _add_tree_args(p_export)
    p_export.add_argument("--output", "-o", required=True, help="output JSON path")
    p_export.set_defaults(func=_cmd_export)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
